#include "nn/ops.h"

#include <algorithm>
#include <cmath>

namespace tlp::nn {

namespace {

std::shared_ptr<Node>
makeNode(std::vector<int> shape,
         std::vector<std::shared_ptr<Node>> parents)
{
    auto node = std::make_shared<Node>();
    node->shape = std::move(shape);
    node->value.resize(static_cast<size_t>(shapeNumel(node->shape)));
    node->parents = std::move(parents);
    for (const auto &parent : node->parents)
        node->requires_grad |= parent->requires_grad;
    return node;
}

/** Leading dims x last dim factorization. */
std::pair<int64_t, int64_t>
rowsCols(const std::vector<int> &shape)
{
    TLP_CHECK(!shape.empty(), "rank-0 tensor");
    const int64_t cols = shape.back();
    return {shapeNumel(shape) / cols, cols};
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape() == b.shape(), "add shape mismatch");
    auto node = makeNode(a.shape(), {a.node(), b.node()});
    const auto &av = a.value();
    const auto &bv = b.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = av[i] + bv[i];
    node->backward_fn = [](Node &self) {
        for (int p = 0; p < 2; ++p) {
            auto &grad = self.parents[static_cast<size_t>(p)]->grad;
            for (size_t i = 0; i < self.grad.size(); ++i)
                grad[i] += self.grad[i];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
addBias(const Tensor &x, const Tensor &bias)
{
    TLP_CHECK(bias.shape().size() == 1, "bias must be 1-D");
    const auto [rows, cols] = rowsCols(x.shape());
    TLP_CHECK(cols == bias.numel(), "bias width mismatch");
    auto node = makeNode(x.shape(), {x.node(), bias.node()});
    const auto &xv = x.value();
    const auto &bv = bias.value();
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c)
            node->value[static_cast<size_t>(r * cols + c)] =
                xv[static_cast<size_t>(r * cols + c)] +
                bv[static_cast<size_t>(c)];
    const int64_t rows_c = rows, cols_c = cols;
    node->backward_fn = [rows_c, cols_c](Node &self) {
        auto &gx = self.parents[0]->grad;
        auto &gb = self.parents[1]->grad;
        for (int64_t r = 0; r < rows_c; ++r) {
            for (int64_t c = 0; c < cols_c; ++c) {
                const float g =
                    self.grad[static_cast<size_t>(r * cols_c + c)];
                gx[static_cast<size_t>(r * cols_c + c)] += g;
                gb[static_cast<size_t>(c)] += g;
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape() == b.shape(), "mul shape mismatch");
    auto node = makeNode(a.shape(), {a.node(), b.node()});
    const auto &av = a.value();
    const auto &bv = b.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = av[i] * bv[i];
    node->backward_fn = [](Node &self) {
        auto &ga = self.parents[0]->grad;
        auto &gb = self.parents[1]->grad;
        const auto &av = self.parents[0]->value;
        const auto &bv = self.parents[1]->value;
        for (size_t i = 0; i < self.grad.size(); ++i) {
            ga[i] += self.grad[i] * bv[i];
            gb[i] += self.grad[i] * av[i];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
scale(const Tensor &x, float factor)
{
    auto node = makeNode(x.shape(), {x.node()});
    const auto &xv = x.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = xv[i] * factor;
    node->backward_fn = [factor](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (size_t i = 0; i < self.grad.size(); ++i)
            gx[i] += self.grad[i] * factor;
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape().size() == 2 && b.shape().size() == 2,
              "matmul expects rank-2 inputs");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    TLP_CHECK(b.dim(0) == k, "matmul contraction mismatch");
    auto node = makeNode({static_cast<int>(m), static_cast<int>(n)},
                         {a.node(), b.node()});
    const float *av = a.value().data();
    const float *bv = b.value().data();
    float *cv = node->value.data();
    std::fill(node->value.begin(), node->value.end(), 0.0f);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float aval = av[i * k + p];
            const float *brow = bv + p * n;
            float *crow = cv + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
    node->backward_fn = [m, k, n](Node &self) {
        const float *av = self.parents[0]->value.data();
        const float *bv = self.parents[1]->value.data();
        float *ga = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *gc = self.grad.data();
        // dA = dC * B^T
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t p = 0; p < k; ++p) {
                const float *gcrow = gc + i * n;
                const float *brow = bv + p * n;
                float acc = 0.0f;
                for (int64_t j = 0; j < n; ++j)
                    acc += gcrow[j] * brow[j];
                ga[i * k + p] += acc;
            }
        }
        // dB = A^T * dC
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t p = 0; p < k; ++p) {
                const float aval = av[i * k + p];
                const float *gcrow = gc + i * n;
                float *gbrow = gb + p * n;
                for (int64_t j = 0; j < n; ++j)
                    gbrow[j] += aval * gcrow[j];
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
bmm(const Tensor &a, const Tensor &b)
{
    TLP_CHECK(a.shape().size() == 3 && b.shape().size() == 3,
              "bmm expects rank-3 inputs");
    const int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2),
                  n = b.dim(2);
    TLP_CHECK(b.dim(0) == batch && b.dim(1) == k, "bmm shape mismatch");
    auto node = makeNode({static_cast<int>(batch), static_cast<int>(m),
                          static_cast<int>(n)},
                         {a.node(), b.node()});
    std::fill(node->value.begin(), node->value.end(), 0.0f);
    const float *av = a.value().data();
    const float *bv = b.value().data();
    float *cv = node->value.data();
    for (int64_t s = 0; s < batch; ++s) {
        const float *as = av + s * m * k;
        const float *bs = bv + s * k * n;
        float *cs = cv + s * m * n;
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t p = 0; p < k; ++p) {
                const float aval = as[i * k + p];
                const float *brow = bs + p * n;
                float *crow = cs + i * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += aval * brow[j];
            }
        }
    }
    node->backward_fn = [batch, m, k, n](Node &self) {
        const float *av = self.parents[0]->value.data();
        const float *bv = self.parents[1]->value.data();
        float *ga = self.parents[0]->grad.data();
        float *gb = self.parents[1]->grad.data();
        const float *gc = self.grad.data();
        for (int64_t s = 0; s < batch; ++s) {
            const float *as = av + s * m * k;
            const float *bs = bv + s * k * n;
            float *gas = ga + s * m * k;
            float *gbs = gb + s * k * n;
            const float *gcs = gc + s * m * n;
            for (int64_t i = 0; i < m; ++i) {
                for (int64_t p = 0; p < k; ++p) {
                    const float *gcrow = gcs + i * n;
                    const float *brow = bs + p * n;
                    float acc = 0.0f;
                    for (int64_t j = 0; j < n; ++j)
                        acc += gcrow[j] * brow[j];
                    gas[i * k + p] += acc;
                }
            }
            for (int64_t i = 0; i < m; ++i) {
                for (int64_t p = 0; p < k; ++p) {
                    const float aval = as[i * k + p];
                    const float *gcrow = gcs + i * n;
                    float *gbrow = gbs + p * n;
                    for (int64_t j = 0; j < n; ++j)
                        gbrow[j] += aval * gcrow[j];
                }
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
relu(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const auto &xv = x.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = xv[i] > 0.0f ? xv[i] : 0.0f;
    node->backward_fn = [](Node &self) {
        auto &gx = self.parents[0]->grad;
        const auto &xv = self.parents[0]->value;
        for (size_t i = 0; i < self.grad.size(); ++i)
            gx[i] += xv[i] > 0.0f ? self.grad[i] : 0.0f;
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
tanhT(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const auto &xv = x.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = std::tanh(xv[i]);
    node->backward_fn = [](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (size_t i = 0; i < self.grad.size(); ++i) {
            const float y = self.value[i];
            gx[i] += self.grad[i] * (1.0f - y * y);
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sigmoidT(const Tensor &x)
{
    auto node = makeNode(x.shape(), {x.node()});
    const auto &xv = x.value();
    for (size_t i = 0; i < node->value.size(); ++i)
        node->value[i] = 1.0f / (1.0f + std::exp(-xv[i]));
    node->backward_fn = [](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (size_t i = 0; i < self.grad.size(); ++i) {
            const float y = self.value[i];
            gx[i] += self.grad[i] * y * (1.0f - y);
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
softmaxLastDim(const Tensor &x)
{
    const auto [rows, cols] = rowsCols(x.shape());
    auto node = makeNode(x.shape(), {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < rows; ++r) {
        const float *in = xv.data() + r * cols;
        float *out = node->value.data() + r * cols;
        float max_v = in[0];
        for (int64_t c = 1; c < cols; ++c)
            max_v = std::max(max_v, in[c]);
        float sum = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            out[c] = std::exp(in[c] - max_v);
            sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (int64_t c = 0; c < cols; ++c)
            out[c] *= inv;
    }
    const int64_t rows_c = rows, cols_c = cols;
    node->backward_fn = [rows_c, cols_c](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < rows_c; ++r) {
            const float *y = self.value.data() + r * cols_c;
            const float *gy = self.grad.data() + r * cols_c;
            float dot = 0.0f;
            for (int64_t c = 0; c < cols_c; ++c)
                dot += y[c] * gy[c];
            float *g = gx.data() + r * cols_c;
            for (int64_t c = 0; c < cols_c; ++c)
                g[c] += y[c] * (gy[c] - dot);
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
softmaxLastDimCausal(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() >= 2 &&
                  shape.back() == shape[shape.size() - 2],
              "causal softmax needs square trailing dims");
    const int64_t l = shape.back();
    const auto [rows, cols] = rowsCols(shape);
    auto node = makeNode(shape, {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t allowed = (r % l) + 1;   // row index within block
        const float *in = xv.data() + r * cols;
        float *out = node->value.data() + r * cols;
        float max_v = in[0];
        for (int64_t c = 1; c < allowed; ++c)
            max_v = std::max(max_v, in[c]);
        float sum = 0.0f;
        for (int64_t c = 0; c < allowed; ++c) {
            out[c] = std::exp(in[c] - max_v);
            sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (int64_t c = 0; c < allowed; ++c)
            out[c] *= inv;
        for (int64_t c = allowed; c < cols; ++c)
            out[c] = 0.0f;
    }
    const int64_t rows_c = rows, cols_c = cols;
    node->backward_fn = [rows_c, cols_c](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < rows_c; ++r) {
            const float *y = self.value.data() + r * cols_c;
            const float *gy = self.grad.data() + r * cols_c;
            float dot = 0.0f;
            for (int64_t c = 0; c < cols_c; ++c)
                dot += y[c] * gy[c];
            float *g = gx.data() + r * cols_c;
            // masked positions have y == 0 and receive no gradient
            for (int64_t c = 0; c < cols_c; ++c)
                g[c] += y[c] * (gy[c] - dot);
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
transposeLast2(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() >= 2, "transpose needs rank >= 2");
    std::vector<int> out_shape = shape;
    std::swap(out_shape[out_shape.size() - 1],
              out_shape[out_shape.size() - 2]);
    const int64_t rows = shape[shape.size() - 2];
    const int64_t cols = shape[shape.size() - 1];
    const int64_t batch = shapeNumel(shape) / (rows * cols);

    auto node = makeNode(out_shape, {x.node()});
    const auto &xv = x.value();
    for (int64_t s = 0; s < batch; ++s) {
        const float *in = xv.data() + s * rows * cols;
        float *out = node->value.data() + s * rows * cols;
        for (int64_t r = 0; r < rows; ++r)
            for (int64_t c = 0; c < cols; ++c)
                out[c * rows + r] = in[r * cols + c];
    }
    node->backward_fn = [batch, rows, cols](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t s = 0; s < batch; ++s) {
            const float *gout = self.grad.data() + s * rows * cols;
            float *gin = gx.data() + s * rows * cols;
            for (int64_t r = 0; r < rows; ++r)
                for (int64_t c = 0; c < cols; ++c)
                    gin[r * cols + c] += gout[c * rows + r];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
permute0213(const Tensor &x)
{
    const auto &shape = x.shape();
    TLP_CHECK(shape.size() == 4, "permute0213 needs rank 4");
    const int64_t a = shape[0], b = shape[1], c = shape[2], d = shape[3];
    auto node = makeNode({shape[0], shape[2], shape[1], shape[3]},
                         {x.node()});
    const auto &xv = x.value();
    for (int64_t ia = 0; ia < a; ++ia)
        for (int64_t ib = 0; ib < b; ++ib)
            for (int64_t ic = 0; ic < c; ++ic) {
                const float *in = xv.data() + ((ia * b + ib) * c + ic) * d;
                float *out = node->value.data() +
                             ((ia * c + ic) * b + ib) * d;
                std::copy(in, in + d, out);
            }
    node->backward_fn = [a, b, c, d](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t ia = 0; ia < a; ++ia)
            for (int64_t ib = 0; ib < b; ++ib)
                for (int64_t ic = 0; ic < c; ++ic) {
                    float *gin =
                        gx.data() + ((ia * b + ib) * c + ic) * d;
                    const float *gout = self.grad.data() +
                                        ((ia * c + ic) * b + ib) * d;
                    for (int64_t id = 0; id < d; ++id)
                        gin[id] += gout[id];
                }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
reshape(const Tensor &x, const std::vector<int> &shape)
{
    TLP_CHECK(shapeNumel(shape) == x.numel(),
              "reshape changes element count");
    auto node = makeNode(shape, {x.node()});
    node->value = x.value();
    node->backward_fn = [](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (size_t i = 0; i < self.grad.size(); ++i)
            gx[i] += self.grad[i];
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sumAll(const Tensor &x)
{
    auto node = makeNode({1}, {x.node()});
    float sum = 0.0f;
    for (float v : x.value())
        sum += v;
    node->value[0] = sum;
    node->backward_fn = [](Node &self) {
        auto &gx = self.parents[0]->grad;
        const float g = self.grad[0];
        for (auto &v : gx)
            v += g;
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
meanAll(const Tensor &x)
{
    return scale(sumAll(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor
sumAxis1(const Tensor &x)
{
    TLP_CHECK(x.shape().size() == 2, "sumAxis1 needs rank 2");
    const int64_t n = x.dim(0), m = x.dim(1);
    auto node = makeNode({static_cast<int>(n)}, {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < n; ++r) {
        float sum = 0.0f;
        for (int64_t c = 0; c < m; ++c)
            sum += xv[static_cast<size_t>(r * m + c)];
        node->value[static_cast<size_t>(r)] = sum;
    }
    node->backward_fn = [n, m](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < n; ++r) {
            const float g = self.grad[static_cast<size_t>(r)];
            for (int64_t c = 0; c < m; ++c)
                gx[static_cast<size_t>(r * m + c)] += g;
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
selectAxis1(const Tensor &x, int t)
{
    TLP_CHECK(x.shape().size() == 3, "selectAxis1 needs rank 3");
    const int64_t n = x.dim(0), l = x.dim(1), d = x.dim(2);
    TLP_CHECK(t >= 0 && t < l, "bad time index");
    auto node = makeNode({static_cast<int>(n), static_cast<int>(d)},
                         {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < n; ++r) {
        const float *in = xv.data() + (r * l + t) * d;
        std::copy(in, in + d, node->value.data() + r * d);
    }
    node->backward_fn = [n, l, d, t](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < n; ++r) {
            float *gin = gx.data() + (r * l + t) * d;
            const float *gout = self.grad.data() + r * d;
            for (int64_t c = 0; c < d; ++c)
                gin[c] += gout[c];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
stackAxis1(const std::vector<Tensor> &slices)
{
    TLP_CHECK(!slices.empty(), "stackAxis1 of nothing");
    const int64_t n = slices[0].dim(0), d = slices[0].dim(1);
    const int64_t l = static_cast<int64_t>(slices.size());
    std::vector<std::shared_ptr<Node>> parents;
    for (const auto &slice : slices) {
        TLP_CHECK(slice.dim(0) == n && slice.dim(1) == d,
                  "stack slice shape mismatch");
        parents.push_back(slice.node());
    }
    auto node = makeNode({static_cast<int>(n), static_cast<int>(l),
                          static_cast<int>(d)},
                         std::move(parents));
    for (int64_t t = 0; t < l; ++t) {
        const auto &sv = node->parents[static_cast<size_t>(t)]->value;
        for (int64_t r = 0; r < n; ++r) {
            std::copy(sv.data() + r * d, sv.data() + (r + 1) * d,
                      node->value.data() + (r * l + t) * d);
        }
    }
    node->backward_fn = [n, l, d](Node &self) {
        for (int64_t t = 0; t < l; ++t) {
            auto &gs = self.parents[static_cast<size_t>(t)]->grad;
            for (int64_t r = 0; r < n; ++r) {
                const float *gout = self.grad.data() + (r * l + t) * d;
                float *gin = gs.data() + r * d;
                for (int64_t c = 0; c < d; ++c)
                    gin[c] += gout[c];
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
sliceCols(const Tensor &x, int start, int len)
{
    TLP_CHECK(x.shape().size() == 2, "sliceCols needs rank 2");
    const int64_t n = x.dim(0), m = x.dim(1);
    TLP_CHECK(start >= 0 && start + len <= m, "bad column slice");
    auto node = makeNode({static_cast<int>(n), len}, {x.node()});
    const auto &xv = x.value();
    for (int64_t r = 0; r < n; ++r) {
        std::copy(xv.data() + r * m + start,
                  xv.data() + r * m + start + len,
                  node->value.data() + r * len);
    }
    node->backward_fn = [n, m, start, len](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (int64_t r = 0; r < n; ++r) {
            const float *gout = self.grad.data() + r * len;
            float *gin = gx.data() + r * m + start;
            for (int64_t c = 0; c < len; ++c)
                gin[c] += gout[c];
        }
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
dropout(const Tensor &x, double p, Rng &rng, bool training)
{
    if (!training || p <= 0.0)
        return x;
    auto node = makeNode(x.shape(), {x.node()});
    auto mask = std::make_shared<std::vector<float>>(x.value().size());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
    const auto &xv = x.value();
    for (size_t i = 0; i < xv.size(); ++i) {
        (*mask)[i] = rng.bernoulli(p) ? 0.0f : keep_scale;
        node->value[i] = xv[i] * (*mask)[i];
    }
    node->backward_fn = [mask](Node &self) {
        auto &gx = self.parents[0]->grad;
        for (size_t i = 0; i < self.grad.size(); ++i)
            gx[i] += self.grad[i] * (*mask)[i];
    };
    return Tensor::fromNode(std::move(node));
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps)
{
    const auto [rows, cols] = rowsCols(x.shape());
    TLP_CHECK(gamma.numel() == cols && beta.numel() == cols,
              "layer-norm affine width mismatch");
    auto node = makeNode(x.shape(), {x.node(), gamma.node(), beta.node()});
    auto stats = std::make_shared<std::vector<float>>(
        static_cast<size_t>(rows * 2));   // (mean, inv_std) per row
    const auto &xv = x.value();
    const auto &gv = gamma.value();
    const auto &bv = beta.value();
    for (int64_t r = 0; r < rows; ++r) {
        const float *in = xv.data() + r * cols;
        float mean = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            mean += in[c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            const float d = in[c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        (*stats)[static_cast<size_t>(2 * r)] = mean;
        (*stats)[static_cast<size_t>(2 * r + 1)] = inv_std;
        float *out = node->value.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
            out[c] = (in[c] - mean) * inv_std * gv[static_cast<size_t>(c)] +
                     bv[static_cast<size_t>(c)];
        }
    }
    const int64_t rows_c = rows, cols_c = cols;
    node->backward_fn = [rows_c, cols_c, stats](Node &self) {
        auto &gx = self.parents[0]->grad;
        auto &gg = self.parents[1]->grad;
        auto &gb = self.parents[2]->grad;
        const auto &xv = self.parents[0]->value;
        const auto &gv = self.parents[1]->value;
        for (int64_t r = 0; r < rows_c; ++r) {
            const float mean = (*stats)[static_cast<size_t>(2 * r)];
            const float inv_std = (*stats)[static_cast<size_t>(2 * r + 1)];
            const float *in = xv.data() + r * cols_c;
            const float *gy = self.grad.data() + r * cols_c;
            // accumulate gamma/beta grads and the two reduction terms
            float sum_gyg = 0.0f, sum_gygx = 0.0f;
            for (int64_t c = 0; c < cols_c; ++c) {
                const float xhat = (in[c] - mean) * inv_std;
                gg[static_cast<size_t>(c)] += gy[c] * xhat;
                gb[static_cast<size_t>(c)] += gy[c];
                const float gyg = gy[c] * gv[static_cast<size_t>(c)];
                sum_gyg += gyg;
                sum_gygx += gyg * xhat;
            }
            float *g = gx.data() + r * cols_c;
            const float inv_n = 1.0f / static_cast<float>(cols_c);
            for (int64_t c = 0; c < cols_c; ++c) {
                const float xhat = (in[c] - mean) * inv_std;
                const float gyg = gy[c] * gv[static_cast<size_t>(c)];
                g[c] += inv_std *
                        (gyg - inv_n * (sum_gyg + xhat * sum_gygx));
            }
        }
    };
    return Tensor::fromNode(std::move(node));
}

} // namespace tlp::nn
