#include "nn/tensor.h"

#include <algorithm>
#include <unordered_set>

namespace tlp::nn {

int64_t
shapeNumel(const std::vector<int> &shape)
{
    int64_t count = 1;
    for (int extent : shape) {
        TLP_CHECK(extent > 0, "non-positive tensor extent");
        count *= extent;
    }
    return count;
}

void
Node::ensureGrad()
{
    if (grad.size() != value.size())
        grad.assign(value.size(), 0.0f);
}

const std::vector<int> &
Tensor::shape() const
{
    TLP_CHECK(node_, "undefined tensor");
    return node_->shape;
}

int64_t
Tensor::numel() const
{
    TLP_CHECK(node_, "undefined tensor");
    return node_->numel();
}

int
Tensor::dim(int axis) const
{
    const auto &s = shape();
    TLP_CHECK(axis >= 0 && axis < static_cast<int>(s.size()),
              "bad axis ", axis);
    return s[static_cast<size_t>(axis)];
}

std::vector<float> &
Tensor::value()
{
    TLP_CHECK(node_, "undefined tensor");
    return node_->value;
}

const std::vector<float> &
Tensor::value() const
{
    TLP_CHECK(node_, "undefined tensor");
    return node_->value;
}

std::vector<float> &
Tensor::grad()
{
    TLP_CHECK(node_, "undefined tensor");
    node_->ensureGrad();
    return node_->grad;
}

bool
Tensor::requiresGrad() const
{
    TLP_CHECK(node_, "undefined tensor");
    return node_->requires_grad;
}

void
Tensor::backward()
{
    TLP_CHECK(node_, "undefined tensor");
    TLP_CHECK(node_->numel() == 1, "backward() needs a scalar loss");

    // Topological order via iterative DFS.
    std::vector<Node *> order;
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, size_t>> stack;
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < node->parents.size()) {
            Node *parent = node->parents[child++].get();
            if (visited.insert(parent).second)
                stack.push_back({parent, 0});
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->ensureGrad();
    node_->grad[0] = 1.0f;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->backward_fn) {
            for (auto &parent : node->parents)
                parent->ensureGrad();
            node->backward_fn(*node);
        }
    }
}

Tensor
Tensor::zeros(const std::vector<int> &shape, bool requires_grad)
{
    auto node = std::make_shared<Node>();
    node->shape = shape;
    node->value.assign(static_cast<size_t>(shapeNumel(shape)), 0.0f);
    node->requires_grad = requires_grad;
    return fromNode(std::move(node));
}

Tensor
Tensor::fromData(const std::vector<int> &shape, std::vector<float> data,
                 bool requires_grad)
{
    TLP_CHECK(static_cast<int64_t>(data.size()) == shapeNumel(shape),
              "data size does not match shape");
    auto node = std::make_shared<Node>();
    node->shape = shape;
    node->value = std::move(data);
    node->requires_grad = requires_grad;
    return fromNode(std::move(node));
}

Tensor
Tensor::randn(const std::vector<int> &shape, Rng &rng, double stddev,
              bool requires_grad)
{
    auto node = std::make_shared<Node>();
    node->shape = shape;
    node->value.resize(static_cast<size_t>(shapeNumel(shape)));
    for (auto &v : node->value)
        v = static_cast<float>(rng.normal(0.0, stddev));
    node->requires_grad = requires_grad;
    return fromNode(std::move(node));
}

Tensor
Tensor::fromNode(std::shared_ptr<Node> node)
{
    Tensor tensor;
    tensor.node_ = std::move(node);
    return tensor;
}

} // namespace tlp::nn
