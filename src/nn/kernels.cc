#include "nn/kernels.h"

#include <algorithm>

#include "support/thread_pool.h"

namespace tlp::nn::kern {

namespace {

/** K-block size: a [kKBlock x n<=256] B panel stays L1-resident. */
constexpr int64_t kKBlock = 64;

/** I-block size for the transposed update (dC panel reuse). */
constexpr int64_t kIBlock = 64;

/**
 * Serial micro-kernel: C rows [i0, i1) of C = A * B, k-blocked.
 * Per output element the k accumulation order is globally increasing
 * (blocks in order, in-block in order) — identical to naive i-k-j.
 */
void
gemmRows(const float *a, const float *b, float *c, int64_t i0, int64_t i1,
         int64_t k, int64_t n)
{
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    for (int64_t p0 = 0; p0 < k; p0 += kKBlock) {
        const int64_t p1 = std::min(k, p0 + kKBlock);
        for (int64_t i = i0; i < i1; ++i) {
            float *crow = c + i * n;
            for (int64_t p = p0; p < p1; ++p) {
                const float aval = a[i * k + p];
                const float *brow = b + p * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += aval * brow[j];
            }
        }
    }
}

/** Serial micro-kernel: GA rows [i0, i1) of GA += GC * B^T. */
void
gemmNTRows(const float *gc, const float *b, float *ga, int64_t i0,
           int64_t i1, int64_t k, int64_t n)
{
    for (int64_t i = i0; i < i1; ++i) {
        const float *gcrow = gc + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float *brow = b + p * n;
            float acc = 0.0f;
            for (int64_t j = 0; j < n; ++j)
                acc += gcrow[j] * brow[j];
            ga[i * k + p] += acc;
        }
    }
}

/**
 * Serial micro-kernel: GB rows [p0, p1) of GB += A^T * GC, i-blocked.
 * Per (p, j) the i accumulation order is globally increasing, matching
 * the naive i-outer loop it replaced.
 */
void
gemmTNRows(const float *a, const float *gc, float *gb, int64_t p0,
           int64_t p1, int64_t m, int64_t k, int64_t n)
{
    for (int64_t i0 = 0; i0 < m; i0 += kIBlock) {
        const int64_t i1 = std::min(m, i0 + kIBlock);
        for (int64_t p = p0; p < p1; ++p) {
            float *gbrow = gb + p * n;
            for (int64_t i = i0; i < i1; ++i) {
                const float aval = a[i * k + p];
                const float *gcrow = gc + i * n;
                for (int64_t j = 0; j < n; ++j)
                    gbrow[j] += aval * gcrow[j];
            }
        }
    }
}

} // namespace

int64_t
rowGrain(int64_t work_per_row)
{
    return std::max<int64_t>(
        1, kParallelGrainWork / std::max<int64_t>(1, work_per_row));
}

void
gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
     int64_t n)
{
    ThreadPool::global().parallelFor(
        0, m, rowGrain(k * n), [&](int64_t i0, int64_t i1) {
            gemmRows(a, b, c, i0, i1, k, n);
        });
}

void
gemmNT(const float *gc, const float *b, float *ga, int64_t m, int64_t k,
       int64_t n)
{
    ThreadPool::global().parallelFor(
        0, m, rowGrain(k * n), [&](int64_t i0, int64_t i1) {
            gemmNTRows(gc, b, ga, i0, i1, k, n);
        });
}

void
gemmTN(const float *a, const float *gc, float *gb, int64_t m, int64_t k,
       int64_t n)
{
    ThreadPool::global().parallelFor(
        0, k, rowGrain(m * n), [&](int64_t p0, int64_t p1) {
            gemmTNRows(a, gc, gb, p0, p1, m, k, n);
        });
}

void
bmm(const float *a, const float *b, float *c, int64_t batch, int64_t m,
    int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmRows(a + s * m * k, b + s * k * n, c + s * m * n, 0,
                         m, k, n);
            }
        });
}

void
bmmNT(const float *gc, const float *b, float *ga, int64_t batch, int64_t m,
      int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmNTRows(gc + s * m * n, b + s * k * n, ga + s * m * k,
                           0, m, k, n);
            }
        });
}

void
bmmTN(const float *a, const float *gc, float *gb, int64_t batch, int64_t m,
      int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmTNRows(a + s * m * k, gc + s * m * n, gb + s * k * n,
                           0, k, m, k, n);
            }
        });
}

} // namespace tlp::nn::kern
