#include "nn/kernels.h"

#include <algorithm>

#include "support/thread_pool.h"

namespace tlp::nn::kern {

namespace {

/** K-block size: a [kKBlock x n<=256] B panel stays L1-resident. */
constexpr int64_t kKBlock = 64;

/** I-block size for the transposed update (dC panel reuse). */
constexpr int64_t kIBlock = 64;

/** Serial micro-kernel: GA rows [i0, i1) of GA += GC * B^T. */
void
gemmNTRows(const float *TLP_RESTRICT gc, const float *TLP_RESTRICT b,
           float *TLP_RESTRICT ga, int64_t i0, int64_t i1, int64_t k,
           int64_t n)
{
    for (int64_t i = i0; i < i1; ++i) {
        const float *gcrow = gc + i * n;
        for (int64_t p = 0; p < k; ++p) {
            const float *brow = b + p * n;
            float acc = 0.0f;
            for (int64_t j = 0; j < n; ++j)
                acc += gcrow[j] * brow[j];
            ga[i * k + p] += acc;
        }
    }
}

/**
 * Serial micro-kernel: GB rows [p0, p1) of GB += A^T * GC, i-blocked.
 * Per (p, j) the i accumulation order is globally increasing, matching
 * the naive i-outer loop it replaced.
 */
void
gemmTNRows(const float *TLP_RESTRICT a, const float *TLP_RESTRICT gc,
           float *TLP_RESTRICT gb, int64_t p0, int64_t p1, int64_t m,
           int64_t k, int64_t n)
{
    for (int64_t i0 = 0; i0 < m; i0 += kIBlock) {
        const int64_t i1 = std::min(m, i0 + kIBlock);
        for (int64_t p = p0; p < p1; ++p) {
            float *TLP_RESTRICT gbrow = gb + p * n;
            int64_t i = i0;
            for (; i + 4 <= i1; i += 4) {
                const float a0 = a[(i + 0) * k + p];
                const float a1 = a[(i + 1) * k + p];
                const float a2 = a[(i + 2) * k + p];
                const float a3 = a[(i + 3) * k + p];
                const float *g0 = gc + (i + 0) * n;
                const float *g1 = gc + (i + 1) * n;
                const float *g2 = gc + (i + 2) * n;
                const float *g3 = gc + (i + 3) * n;
                // One sequential accumulator chain per element: the
                // float addition order is exactly the unrolled-by-1
                // loop's, just with the gbrow load/store hoisted.
                for (int64_t j = 0; j < n; ++j) {
                    float acc = gbrow[j];
                    acc += a0 * g0[j];
                    acc += a1 * g1[j];
                    acc += a2 * g2[j];
                    acc += a3 * g3[j];
                    gbrow[j] = acc;
                }
            }
            for (; i < i1; ++i) {
                const float aval = a[i * k + p];
                const float *gcrow = gc + i * n;
                for (int64_t j = 0; j < n; ++j)
                    gbrow[j] += aval * gcrow[j];
            }
        }
    }
}

} // namespace

int64_t
rowGrain(int64_t work_per_row)
{
    return std::max<int64_t>(
        1, kParallelGrainWork / std::max<int64_t>(1, work_per_row));
}

void
gemmRows(const float *TLP_RESTRICT a, const float *TLP_RESTRICT b,
         float *TLP_RESTRICT c, int64_t i0, int64_t i1, int64_t k,
         int64_t n)
{
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    for (int64_t p0 = 0; p0 < k; p0 += kKBlock) {
        const int64_t p1 = std::min(k, p0 + kKBlock);
        for (int64_t i = i0; i < i1; ++i) {
            float *TLP_RESTRICT crow = c + i * n;
            const float *arow = a + i * k;
            int64_t p = p0;
            for (; p + 4 <= p1; p += 4) {
                const float a0 = arow[p + 0];
                const float a1 = arow[p + 1];
                const float a2 = arow[p + 2];
                const float a3 = arow[p + 3];
                const float *b0 = b + (p + 0) * n;
                const float *b1 = b + (p + 1) * n;
                const float *b2 = b + (p + 2) * n;
                const float *b3 = b + (p + 3) * n;
                // Sequential accumulator chain: same float op order as
                // four single-p iterations, but the C row stays in
                // registers across four FMA streams.
                for (int64_t j = 0; j < n; ++j) {
                    float acc = crow[j];
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    crow[j] = acc;
                }
            }
            for (; p < p1; ++p) {
                const float aval = arow[p];
                const float *brow = b + p * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += aval * brow[j];
            }
        }
    }
}

void
gemm(const float *a, const float *b, float *c, int64_t m, int64_t k,
     int64_t n)
{
    ThreadPool::global().parallelFor(
        0, m, rowGrain(k * n), [&](int64_t i0, int64_t i1) {
            gemmRows(a, b, c, i0, i1, k, n);
        });
}

void
gemmNT(const float *gc, const float *b, float *ga, int64_t m, int64_t k,
       int64_t n)
{
    ThreadPool::global().parallelFor(
        0, m, rowGrain(k * n), [&](int64_t i0, int64_t i1) {
            gemmNTRows(gc, b, ga, i0, i1, k, n);
        });
}

void
gemmTN(const float *a, const float *gc, float *gb, int64_t m, int64_t k,
       int64_t n)
{
    ThreadPool::global().parallelFor(
        0, k, rowGrain(m * n), [&](int64_t p0, int64_t p1) {
            gemmTNRows(a, gc, gb, p0, p1, m, k, n);
        });
}

void
bmm(const float *a, const float *b, float *c, int64_t batch, int64_t m,
    int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmRows(a + s * m * k, b + s * k * n, c + s * m * n, 0,
                         m, k, n);
            }
        });
}

void
bmmNT(const float *gc, const float *b, float *ga, int64_t batch, int64_t m,
      int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmNTRows(gc + s * m * n, b + s * k * n, ga + s * m * k,
                           0, m, k, n);
            }
        });
}

void
bmmTN(const float *a, const float *gc, float *gb, int64_t batch, int64_t m,
      int64_t k, int64_t n)
{
    ThreadPool::global().parallelFor(
        0, batch, rowGrain(m * k * n), [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
                gemmTNRows(a + s * m * k, gc + s * m * n, gb + s * k * n,
                           0, k, m, k, n);
            }
        });
}

} // namespace tlp::nn::kern
