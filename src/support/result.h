/**
 * @file
 * Recoverable error propagation for the artifact-I/O boundary.
 *
 * Library-boundary loaders (datasets, model snapshots, tuning
 * checkpoints, bench memos) return Status / Result<T> instead of
 * terminating the process, so callers can regenerate, salvage, or report
 * one clear message. TLP_FATAL remains the right answer for CLI-level
 * user errors and TLP_PANIC for internal bugs; Status is for failures
 * the program is expected to survive — a corrupt or foreign file is not
 * a bug in this process.
 */
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#include "support/logging.h"

namespace tlp {

/** Failure classes of recoverable operations (artifact I/O). */
enum class ErrorCode
{
    Ok = 0,
    IoError,       ///< open/read/write/rename failed at the OS level
    Truncated,     ///< stream ends before the advertised data
    Corrupt,       ///< checksum mismatch or structurally invalid data
    VersionSkew,   ///< file format version outside the supported range
    Invalid,       ///< well-formed file that doesn't fit this session
};

/** Short name of @p code, e.g. "corrupt". */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:          return "ok";
      case ErrorCode::IoError:     return "io_error";
      case ErrorCode::Truncated:   return "truncated";
      case ErrorCode::Corrupt:     return "corrupt";
      case ErrorCode::VersionSkew: return "version_skew";
      case ErrorCode::Invalid:     return "invalid";
    }
    return "unknown";
}

/** The outcome of a recoverable operation: Ok or a coded message. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    /** Failed status with a code and a human-readable message. */
    static Status
    error(ErrorCode code, std::string message)
    {
        Status status;
        status.code_ = code;
        status.message_ = std::move(message);
        return status;
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** A Status or a value: the return type of recoverable loaders. */
template <typename T>
class Result
{
  public:
    /** Successful result holding @p value. */
    Result(T value) : value_(std::move(value)) {}

    /** Failed result; @p status must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        TLP_CHECK(!status_.ok(), "Result built from an ok Status");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    /** The held value; panics when !ok(). */
    T &
    value()
    {
        TLP_CHECK(value_.has_value(), "Result::value() on error: ",
                  status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        TLP_CHECK(value_.has_value(), "Result::value() on error: ",
                  status_.toString());
        return *value_;
    }

    /** Move the held value out; panics when !ok(). */
    T
    take()
    {
        TLP_CHECK(value_.has_value(), "Result::take() on error: ",
                  status_.toString());
        T moved = std::move(*value_);
        value_.reset();
        return moved;
    }

  private:
    Status status_;
    std::optional<T> value_;
};

/**
 * CLI-boundary termination for damaged artifacts: print the context and
 * the Status, then exit(kExitCorruptArtifact) — distinct from the
 * TLP_FATAL user-error code (2) so scripts can tell "called it wrong"
 * apart from "your file is damaged". Library code must keep returning
 * the Status instead.
 */
template <typename... Args>
[[noreturn]] void
artifactFatal(const Status &status, Args &&...context)
{
    detail::logLine(LogLevel::Error,
                    detail::concat(std::forward<Args>(context)...) + ": " +
                        status.toString());
    std::exit(kExitCorruptArtifact);
}

} // namespace tlp
