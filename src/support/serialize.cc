#include "support/serialize.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>

#include "support/io_env.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace tlp {

namespace {

/** Lazily built table for the reflected IEEE CRC32 polynomial. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t crc)
{
    const auto &table = crcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t c = crc ^ 0xffffffffu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
BinaryWriter::writeString(const std::string &value)
{
    writePod<uint64_t>(value.size());
    os_.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void
BinaryWriter::writeBytes(const std::string &bytes)
{
    os_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

BinaryReader::BinaryReader(std::istream &is)
    : is_(is), remaining_(UINT64_MAX)
{
    // Measure the bytes left in seekable streams so length prefixes can
    // be rejected before allocation; non-seekable streams stay unbounded
    // and rely on stream failure alone.
    const auto pos = is_.tellg();
    if (pos < 0)
        return;
    is_.seekg(0, std::ios::end);
    const auto end = is_.tellg();
    is_.seekg(pos);
    if (end >= pos)
        remaining_ = static_cast<uint64_t>(end - pos);
}

void
BinaryReader::requireBytes(uint64_t size, const char *what) const
{
    if (size > remaining_) {
        throw SerializeError(ErrorCode::Truncated,
                             std::string("truncated binary stream: ") +
                                 what + " needs " + std::to_string(size) +
                                 " bytes, " + std::to_string(remaining_) +
                                 " remain");
    }
}

void
BinaryReader::consume(uint64_t size)
{
    if (remaining_ != UINT64_MAX)
        remaining_ -= size;
}

std::string
BinaryReader::readString()
{
    const auto size = readPod<uint64_t>();
    return readBytes(size);
}

std::string
BinaryReader::readBytes(uint64_t size)
{
    requireBytes(size, "byte buffer");
    std::string value(size, '\0');
    if (size > 0) {
        is_.read(value.data(), static_cast<std::streamsize>(size));
        if (!is_.good()) {
            throw SerializeError(ErrorCode::Truncated,
                                 "truncated binary stream: wanted " +
                                     std::to_string(size) + " more bytes");
        }
        consume(size);
    }
    return value;
}

void
writeHeader(BinaryWriter &writer, uint32_t magic, uint32_t version)
{
    writer.writePod(magic);
    writer.writePod(version);
}

uint32_t
readHeader(BinaryReader &reader, uint32_t magic, uint32_t min_version,
           uint32_t max_version)
{
    const auto got_magic = reader.readPod<uint32_t>();
    if (got_magic != magic) {
        throw SerializeError(ErrorCode::Corrupt,
                             "bad file magic: got " +
                                 std::to_string(got_magic) + ", want " +
                                 std::to_string(magic));
    }
    const auto version = reader.readPod<uint32_t>();
    if (version < min_version || version > max_version) {
        throw SerializeError(ErrorCode::VersionSkew,
                             "file format version " +
                                 std::to_string(version) +
                                 " is outside the supported range [" +
                                 std::to_string(min_version) + ", " +
                                 std::to_string(max_version) + "]");
    }
    return version;
}

std::string
sectionTagName(uint32_t tag)
{
    std::string name(4, '?');
    for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((tag >> (8 * i)) & 0xffu);
        if (c >= 0x20 && c < 0x7f)
            name[static_cast<size_t>(i)] = c;
    }
    return name;
}

void
writeSectionRaw(BinaryWriter &writer, uint32_t tag,
                const std::string &payload)
{
    writer.writePod(tag);
    writer.writePod<uint64_t>(payload.size());
    writer.writePod<uint32_t>(crc32(payload.data(), payload.size()));
    writer.writeBytes(payload);
}

Section
readSection(BinaryReader &reader)
{
    Section section;
    section.tag = reader.readPod<uint32_t>();
    const auto length = reader.readPod<uint64_t>();
    const auto stored_crc = reader.readPod<uint32_t>();
    // readBytes validates length against the remaining stream before
    // allocating, so an inflated length field fails cleanly here.
    section.payload = reader.readBytes(length);
    section.crc_ok =
        crc32(section.payload.data(), section.payload.size()) == stored_crc;
    return section;
}

Status
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &body)
{
    // Every artifact write consults the I/O chaos environment first
    // (DESIGN.md §14): a drawn/armed fault fails the write at a precise
    // point — before open, after byte k, at flush, or at rename — and
    // in crash-debris mode leaves the temp file stranded exactly as a
    // dying process would. The destination is never touched by a
    // faulted write, injected or real.
    IoEnv &env = IoEnv::global();
    const IoFaultDecision fault = env.drawWrite(path);

    // The temp name is unique per process (pid) AND per call (atomic
    // counter), so two concurrent writers of the same destination —
    // e.g. two bench processes racing on one memo — can never stream
    // into each other's half-written temp file; the rename then makes
    // the destination atomically equal to exactly one full payload.
    static std::atomic<uint64_t> sequence{0};
#ifdef _WIN32
    const long pid = static_cast<long>(_getpid());
#else
    const long pid = static_cast<long>(getpid());
#endif
    const std::string tmp_path =
        path + ".tmp." + std::to_string(pid) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));

    if (fault.kind == IoFaultKind::OpenFail) {
        return Status::error(ErrorCode::IoError,
                             "injected fault: cannot open for write: " +
                                 tmp_path);
    }
    {
        std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
        if (!os) {
            return Status::error(ErrorCode::IoError,
                                 "cannot open for write: " + tmp_path);
        }
        if (fault.kind == IoFaultKind::None) {
            try {
                body(os);
            } catch (const std::exception &error) {
                os.close();
                std::remove(tmp_path.c_str());
                return Status::error(ErrorCode::IoError,
                                     "write failed: " + tmp_path + ": " +
                                         error.what());
            }
            os.flush();
            if (!os.good()) {
                os.close();
                std::remove(tmp_path.c_str());
                return Status::error(ErrorCode::IoError,
                                     "write failed (disk full?): " +
                                         tmp_path);
            }
        } else {
            // Faulted write: buffer the payload so a torn write can
            // stop at an exact byte k (a streaming fault could only
            // tear at flush granularity).
            std::ostringstream buffer(std::ios::binary);
            try {
                body(buffer);
            } catch (const std::exception &error) {
                os.close();
                std::remove(tmp_path.c_str());
                return Status::error(ErrorCode::IoError,
                                     "write failed: " + tmp_path + ": " +
                                         error.what());
            }
            const std::string payload = buffer.str();
            size_t keep = payload.size();
            if (fault.kind == IoFaultKind::TornWrite) {
                keep = fault.torn_at >= 0
                           ? std::min<size_t>(
                                 static_cast<size_t>(fault.torn_at),
                                 payload.size())
                           : static_cast<size_t>(
                                 fault.aux % (payload.size() + 1));
            }
            os.write(payload.data(),
                     static_cast<std::streamsize>(keep));
            os.flush();
            os.close();
            if (fault.kind == IoFaultKind::TornWrite ||
                fault.kind == IoFaultKind::FlushFail) {
                if (!fault.crash_debris)
                    std::remove(tmp_path.c_str());
                return Status::error(
                    ErrorCode::IoError,
                    std::string("injected fault: ") +
                        ioFaultKindName(fault.kind) + ": " + tmp_path);
            }
        }
    }
    if (fault.kind == IoFaultKind::RenameFail) {
        if (!fault.crash_debris)
            std::remove(tmp_path.c_str());
        return Status::error(ErrorCode::IoError,
                             "injected fault: cannot move temp file "
                             "into place: " +
                                 path);
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::error(ErrorCode::IoError,
                             "cannot move temp file into place: " + path);
    }
    env.noteWriteCommitted();
    return Status();
}

} // namespace tlp
