#include "support/serialize.h"

namespace tlp {

void
BinaryWriter::writeString(const std::string &value)
{
    writePod<uint64_t>(value.size());
    os_.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string
BinaryReader::readString()
{
    const auto size = readPod<uint64_t>();
    std::string value(size, '\0');
    if (size > 0) {
        is_.read(value.data(), static_cast<std::streamsize>(size));
        if (!is_.good())
            TLP_FATAL("truncated binary stream: wanted ", size,
                      " more bytes");
    }
    return value;
}

void
writeHeader(BinaryWriter &writer, uint32_t magic, uint32_t version)
{
    writer.writePod(magic);
    writer.writePod(version);
}

uint32_t
readHeader(BinaryReader &reader, uint32_t magic, uint32_t max_version)
{
    const auto got_magic = reader.readPod<uint32_t>();
    if (got_magic != magic)
        TLP_FATAL("bad file magic: got ", got_magic, ", want ", magic);
    const auto version = reader.readPod<uint32_t>();
    if (version > max_version) {
        TLP_FATAL("file version ", version,
                  " is newer than supported version ", max_version);
    }
    return version;
}

} // namespace tlp
