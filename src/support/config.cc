#include "support/config.h"

#include <algorithm>
#include <cstdlib>

namespace tlp {

// Call-graph edges resolve by name: the hot path (configuredThreads)
// uses the non-allocating double overload below; this string overload
// is config-time only.
std::string
envOr(const std::string &name, // tlp-lint: allow(hot-call-alloc) -- string overload is config-time only
      const std::string &fallback)
{
    const char *value = std::getenv(name.c_str());
    return value ? std::string(value) : fallback;
}

double
envOr(const std::string &name, double fallback)
{
    const char *value = std::getenv(name.c_str());
    if (!value)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value)
        return fallback;
    return parsed;
}

double
benchScale()
{
    const double scale = envOr("TLP_BENCH_SCALE", 1.0);
    return std::clamp(scale, 0.05, 1000.0);
}

int64_t
scaledCount(int64_t base, int64_t floor)
{
    const double scaled = static_cast<double>(base) * benchScale();
    return std::max<int64_t>(floor, static_cast<int64_t>(scaled));
}

} // namespace tlp
