#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tlp {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    // Compute the widths over header and all rows.
    std::vector<size_t> widths;
    auto fold = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    fold(header_);
    for (const auto &row : rows_)
        fold(row);

    auto renderRow = [&](const std::vector<std::string> &row,
                         std::ostringstream &os) {
        os << "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << ' ' << cell;
            os << std::string(widths[i] - cell.size() + 1, ' ') << '|';
        }
        os << '\n';
    };
    auto renderSep = [&](std::ostringstream &os) {
        os << "+";
        for (size_t width : widths)
            os << std::string(width + 2, '-') << '+';
        os << '\n';
    };

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << '\n';
    renderSep(os);
    if (!header_.empty()) {
        renderRow(header_, os);
        renderSep(os);
    }
    for (const auto &row : rows_) {
        if (row.empty()) {
            renderSep(os);
        } else {
            renderRow(row, os);
        }
    }
    renderSep(os);
    return os.str();
}

void
TextTable::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

} // namespace tlp
