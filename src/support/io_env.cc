#include "support/io_env.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "support/config.h"
#include "support/rng.h"

namespace tlp {

namespace fs = std::filesystem;

namespace {

/** splitmix64 finalizer, the same mixer the other keyed draws use. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
hashUniform(uint64_t key)
{
    return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/** Domain-separation salts so write draws, read draws, and derived
 *  values never correlate across streams of the same (seed, path). */
constexpr uint64_t kWriteSalt = 0x770a17ull;
constexpr uint64_t kReadSalt = 0x9ead5ull;
constexpr uint64_t kKindSalt = 0x10f417ull;
constexpr uint64_t kAuxSalt = 0x70a9ull;

} // namespace

bool
isAtomicTempName(const std::string &name, const std::string &stem)
{
    if (!stem.empty()) {
        if (name.compare(0, stem.size(), stem) != 0)
            return false;
    }
    const size_t tmp = name.rfind(".tmp.");
    if (tmp == std::string::npos ||
        (!stem.empty() && tmp != stem.size()))
        return false;
    const std::string tail = name.substr(tmp + 5);
    const size_t dot = tail.find('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 >= tail.size())
        return false;
    const auto all_digits = [](const std::string &s) {
        return !s.empty() &&
               std::all_of(s.begin(), s.end(), [](unsigned char c) {
                   return c >= '0' && c <= '9';
               });
    };
    return all_digits(tail.substr(0, dot)) &&
           all_digits(tail.substr(dot + 1));
}

const char *
ioFaultKindName(IoFaultKind kind)
{
    switch (kind) {
      case IoFaultKind::None:       return "none";
      case IoFaultKind::OpenFail:   return "open-fail";
      case IoFaultKind::TornWrite:  return "torn-write";
      case IoFaultKind::FlushFail:  return "flush-fail";
      case IoFaultKind::RenameFail: return "rename-fail";
    }
    return "unknown";
}

IoFaultDecision
IoFaultProfile::draw(uint64_t path_fp, uint64_t op_index) const
{
    IoFaultDecision decision;
    if (fault_rate <= 0.0)
        return decision;
    uint64_t h = hashCombine(seed, kWriteSalt);
    h = hashCombine(h, path_fp);
    h = hashCombine(h, op_index);
    if (hashUniform(h) >= fault_rate)
        return decision;
    static constexpr IoFaultKind kKinds[] = {
        IoFaultKind::OpenFail, IoFaultKind::TornWrite,
        IoFaultKind::FlushFail, IoFaultKind::RenameFail};
    decision.kind = kKinds[mix64(hashCombine(h, kKindSalt)) % 4];
    decision.aux = mix64(hashCombine(h, kAuxSalt));
    decision.crash_debris = crash_debris;
    return decision;
}

IoFaultProfile
IoFaultProfile::fromEnv()
{
    IoFaultProfile profile;
    profile.fault_rate = std::clamp(envOr("TLP_IO_FAULT_RATE", 0.0),
                                    0.0, 0.999);
    profile.seed = static_cast<uint64_t>(
        envOr("TLP_IO_FAULT_SEED",
              static_cast<double>(profile.seed)));
    profile.crash_debris = envOr("TLP_IO_CRASH_DEBRIS", 0.0) > 0.5;
    return profile;
}

IoEnv::IoEnv()
    : profile_(IoFaultProfile::fromEnv())
{
}

IoEnv &
IoEnv::global()
{
    static IoEnv env;
    return env;
}

void
IoEnv::setProfile(const IoFaultProfile &profile)
{
    std::lock_guard<std::mutex> lock(mutex_);
    profile_ = profile;
    write_ops_.clear();
    read_ops_.clear();
    has_armed_ = false;
}

IoFaultProfile
IoEnv::profile() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return profile_;
}

void
IoEnv::armNextWrite(const IoFaultDecision &decision)
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_ = decision;
    has_armed_ = true;
}

IoFaultDecision
IoEnv::drawWrite(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.writes_attempted += 1;
    IoFaultDecision decision;
    if (has_armed_) {
        decision = armed_;
        has_armed_ = false;
    } else if (profile_.enabled()) {
        const uint64_t fp = fnv1a(path.data(), path.size());
        decision = profile_.draw(fp, write_ops_[fp]++);
    }
    switch (decision.kind) {
      case IoFaultKind::None:                                     break;
      case IoFaultKind::OpenFail:   counters_.open_faults += 1;   break;
      case IoFaultKind::TornWrite:  counters_.torn_faults += 1;   break;
      case IoFaultKind::FlushFail:  counters_.flush_faults += 1;  break;
      case IoFaultKind::RenameFail: counters_.rename_faults += 1; break;
    }
    return decision;
}

Status
IoEnv::checkRead(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.read_checks += 1;
    if (!profile_.enabled())
        return Status();
    const uint64_t fp = fnv1a(path.data(), path.size());
    uint64_t h = hashCombine(profile_.seed, kReadSalt);
    h = hashCombine(h, fp);
    h = hashCombine(h, read_ops_[fp]++);
    if (hashUniform(h) >= profile_.fault_rate)
        return Status();
    counters_.read_faults += 1;
    return Status::error(ErrorCode::IoError,
                         "injected fault: cannot open for read: " + path);
}

void
IoEnv::noteWriteCommitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.writes_committed += 1;
}

void
IoEnv::noteTempsSwept(int count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.temps_swept += count;
}

IoCounters
IoEnv::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
IoEnv::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = IoCounters{};
}

ScopedIoFaults::ScopedIoFaults(const IoFaultProfile &profile)
    : saved_(IoEnv::global().profile())
{
    IoEnv::global().setProfile(profile);
    IoEnv::global().resetCounters();
}

ScopedIoFaults::~ScopedIoFaults()
{
    IoEnv::global().setProfile(saved_);
}

Result<std::string>
quarantineArtifact(const std::string &path, int max_generations)
{
    for (int n = 1; n <= max_generations; ++n) {
        const std::string jail =
            path + ".quarantined." + std::to_string(n);
        std::error_code ec;
        if (fs::exists(jail, ec))
            continue;
        fs::rename(path, jail, ec);
        if (ec) {
            return Status::error(ErrorCode::IoError,
                                 "cannot quarantine " + path + " as " +
                                     jail + ": " + ec.message());
        }
        return jail;
    }
    // Every generation slot is taken: refuse rather than overwrite any
    // existing evidence (the caller keeps the damaged file in place).
    return Status::error(ErrorCode::IoError,
                         "cannot quarantine " + path + ": all " +
                             std::to_string(max_generations) +
                             " evidence generations already exist");
}

int
sweepStaleTemps(const std::string &dir)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return 0;
    int swept = 0;
    // Collect first, then unlink: mutating a directory mid-iteration
    // is unspecified on some filesystems.
    std::vector<fs::path> victims;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        if (isAtomicTempName(it->path().filename().string(), ""))
            victims.push_back(it->path());
    }
    for (const fs::path &victim : victims) {
        std::error_code rm_ec;
        if (fs::remove(victim, rm_ec))
            ++swept;
    }
    if (swept > 0)
        IoEnv::global().noteTempsSwept(swept);
    return swept;
}

int
sweepStaleTempsFor(const std::string &artifact_path)
{
    const fs::path artifact(artifact_path);
    const std::string stem = artifact.filename().string();
    const fs::path dir = artifact.has_parent_path()
                             ? artifact.parent_path()
                             : fs::path(".");
    std::error_code ec;
    if (stem.empty() || !fs::is_directory(dir, ec))
        return 0;
    int swept = 0;
    std::vector<fs::path> victims;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        if (isAtomicTempName(it->path().filename().string(), stem))
            victims.push_back(it->path());
    }
    for (const fs::path &victim : victims) {
        std::error_code rm_ec;
        if (fs::remove(victim, rm_ec))
            ++swept;
    }
    if (swept > 0)
        IoEnv::global().noteTempsSwept(swept);
    return swept;
}

} // namespace tlp
