/**
 * @file
 * Binary serialization for dataset, model, and checkpoint artifacts.
 *
 * The format is a flat little-endian byte stream with explicit sizes; it
 * is not self-describing, so readers and writers must agree on the
 * schema. Every top-level file produced by the library starts with a
 * 4-byte magic and a version number checked by the reader, and current
 * formats wrap their payloads in CRC32-checksummed, length-framed
 * sections (writeSection / readSection) so corruption is detected
 * instead of parsed.
 *
 * Robustness contract (see DESIGN.md "Artifact formats & integrity"):
 *  - BinaryReader is bounded: length prefixes are validated against the
 *    remaining stream size *before* allocating, so a corrupt 8-byte
 *    prefix can never trigger a multi-GB allocation.
 *  - Parse failures throw SerializeError rather than killing the
 *    process; library-boundary loaders catch it and return Status /
 *    Result<T> (support/result.h).
 *  - Artifact files are written atomically (atomicWriteFile): stream
 *    into "<path>.tmp.<pid>.<seq>", verify good(), rename — a crash or
 *    full disk mid-write never leaves a half-written artifact at the
 *    final path, and concurrent writers cannot clobber each other's
 *    temp files.
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "support/logging.h"
#include "support/result.h"

namespace tlp {

/**
 * Thrown by BinaryReader / readSection on malformed input. Boundary
 * loaders convert it to a Status; it must not escape the library.
 */
class SerializeError : public std::runtime_error
{
  public:
    SerializeError(ErrorCode code, const std::string &message)
        : std::runtime_error(message), code_(code)
    {}

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** CRC32 (IEEE 802.3, reflected) of @p size bytes; chainable via @p crc. */
uint32_t crc32(const void *data, size_t size, uint32_t crc = 0);

/** Sequential binary writer over an ostream. */
class BinaryWriter
{
  public:
    /** Wrap an externally owned stream. */
    explicit BinaryWriter(std::ostream &os) : os_(os) {}

    /** Write a trivially copyable value verbatim. */
    template <typename T>
    void
    writePod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        os_.write(reinterpret_cast<const char *>(&value), sizeof(T));
    }

    /** Write a length-prefixed string. */
    void writeString(const std::string &value);

    /** Write a length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    writeVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writePod<uint64_t>(values.size());
        if (!values.empty()) {
            os_.write(reinterpret_cast<const char *>(values.data()),
                      static_cast<std::streamsize>(values.size() * sizeof(T)));
        }
    }

    /** Write raw bytes with no length prefix. */
    void writeBytes(const std::string &bytes);

    /** True if the underlying stream is still healthy. */
    bool good() const { return os_.good(); }

  private:
    std::ostream &os_;
};

/**
 * Bounded sequential binary reader over an istream.
 *
 * The constructor measures the bytes remaining in the stream (for
 * seekable streams; others are treated as unbounded) and every read —
 * including the length prefixes of readString/readVector — is validated
 * against that bound before any allocation. Malformed input throws
 * SerializeError instead of terminating the process.
 */
class BinaryReader
{
  public:
    /** Wrap an externally owned stream, measuring its remaining size. */
    explicit BinaryReader(std::istream &is);

    /** Bytes left before the end of the stream (UINT64_MAX: unknown). */
    uint64_t remaining() const { return remaining_; }

    /** Read a trivially copyable value. */
    template <typename T>
    T
    readPod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        requireBytes(sizeof(T), "POD value");
        T value{};
        is_.read(reinterpret_cast<char *>(&value), sizeof(T));
        if (!is_.good()) {
            throw SerializeError(ErrorCode::Truncated,
                                 "truncated binary stream: wanted " +
                                     std::to_string(sizeof(T)) +
                                     " more bytes");
        }
        consume(sizeof(T));
        return value;
    }

    /** Read a length-prefixed string; bounds-checked before allocating. */
    std::string readString();

    /** Read @p size raw bytes (no length prefix); bounds-checked. */
    std::string readBytes(uint64_t size);

    /** Read a length-prefixed vector; bounds-checked before allocating. */
    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto count = readPod<uint64_t>();
        // Reject the length prefix against the remaining stream size
        // before allocating (division form also guards count * sizeof(T)
        // overflow).
        if (count > 0 && count > remaining_ / sizeof(T)) {
            throw SerializeError(
                ErrorCode::Truncated,
                "length prefix " + std::to_string(count) + " x " +
                    std::to_string(sizeof(T)) + " bytes exceeds the " +
                    std::to_string(remaining_) + " bytes remaining");
        }
        std::vector<T> values(count);
        if (count > 0) {
            is_.read(reinterpret_cast<char *>(values.data()),
                     static_cast<std::streamsize>(count * sizeof(T)));
            if (!is_.good()) {
                throw SerializeError(ErrorCode::Truncated,
                                     "truncated binary stream: wanted " +
                                         std::to_string(count * sizeof(T)) +
                                         " more bytes");
            }
            consume(count * sizeof(T));
        }
        return values;
    }

  private:
    /** Throw Truncated when fewer than @p size bytes remain. */
    void requireBytes(uint64_t size, const char *what) const;

    /** Account for @p size consumed bytes. */
    void consume(uint64_t size);

    std::istream &is_;
    uint64_t remaining_;
};

/** Write the standard file header (magic + version). */
void writeHeader(BinaryWriter &writer, uint32_t magic, uint32_t version);

/**
 * Read and validate the standard file header. Throws SerializeError
 * with ErrorCode::Corrupt on a magic mismatch and ErrorCode::VersionSkew
 * on a version outside [@p min_version, @p max_version].
 *
 * @return the version found in the stream, so readers can keep loading
 *         older supported formats.
 */
uint32_t readHeader(BinaryReader &reader, uint32_t magic,
                    uint32_t min_version, uint32_t max_version);

// --- Checksummed section framing ---------------------------------------

/** Pack a 4-character section tag, e.g. sectionTag("META"). */
constexpr uint32_t
sectionTag(const char (&name)[5])
{
    return static_cast<uint32_t>(static_cast<unsigned char>(name[0])) |
           static_cast<uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

/** Unpack a section tag back to 4 characters ('?' for non-printables). */
std::string sectionTagName(uint32_t tag);

/** One framed section: tag (u32), length (u64), CRC32 (u32), payload. */
struct Section
{
    uint32_t tag = 0;
    std::string payload;
    /** False when the stored CRC32 does not match the payload. */
    bool crc_ok = false;
};

/** Emit @p payload as one framed section. */
void writeSectionRaw(BinaryWriter &writer, uint32_t tag,
                     const std::string &payload);

/** Serialize @p body into a buffer and emit it as one framed section. */
template <typename Fn>
void
writeSection(BinaryWriter &writer, uint32_t tag, Fn &&body)
{
    std::ostringstream buffer(std::ios::binary);
    BinaryWriter payload_writer(buffer);
    body(payload_writer);
    writeSectionRaw(writer, tag, buffer.str());
}

/**
 * Read the next framed section. The length field is validated against
 * the remaining stream size before the payload is allocated; a frame
 * that extends past the end of the stream throws
 * SerializeError(Truncated). A checksum mismatch does NOT throw: the
 * payload is still consumed and returned with crc_ok = false, so
 * salvage-mode readers can skip the section and keep going.
 */
Section readSection(BinaryReader &reader);

// --- Boundary helpers ---------------------------------------------------

/**
 * Run a parse body, mapping SerializeError (and any other exception
 * escaping a parser, e.g. std::bad_alloc from hostile input) to Status.
 */
template <typename Fn>
Status
guardedParse(Fn &&body)
{
    try {
        body();
        return Status();
    } catch (const SerializeError &error) {
        return Status::error(error.code(), error.what());
    } catch (const std::exception &error) {
        return Status::error(ErrorCode::Corrupt,
                             std::string("parse failed: ") + error.what());
    }
}

/**
 * Write @p path atomically: stream into "<path>.tmp.<pid>.<seq>" via
 * @p body, check good(), then rename over the final path. On any
 * failure the temp file is removed and the previous contents of @p path
 * are left untouched. The pid + per-call sequence in the temp name make
 * concurrent writes of the same destination (across processes or
 * threads) safe: the final file is always exactly one writer's full
 * payload, never an interleaving.
 *
 * All artifact writes flow through here, which makes it the injection
 * seam for the I/O chaos environment (support/io_env, DESIGN.md §14):
 * an armed or drawn IoFaultDecision can fail the write before open,
 * after an exact payload byte (torn write), at flush, or at rename —
 * optionally leaving crash debris — and the previous contents of
 * @p path survive every one of those faults.
 */
Status atomicWriteFile(const std::string &path,
                       const std::function<void(std::ostream &)> &body);

} // namespace tlp
