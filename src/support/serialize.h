/**
 * @file
 * Minimal binary serialization for dataset and model checkpoints.
 *
 * The format is a flat little-endian byte stream with explicit sizes; it is
 * not self-describing, so readers and writers must agree on the schema.
 * Every top-level file produced by the library starts with a 4-byte magic
 * and a version number checked by the reader.
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "support/logging.h"

namespace tlp {

/** Sequential binary writer over an ostream. */
class BinaryWriter
{
  public:
    /** Wrap an externally owned stream. */
    explicit BinaryWriter(std::ostream &os) : os_(os) {}

    /** Write a trivially copyable value verbatim. */
    template <typename T>
    void
    writePod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        os_.write(reinterpret_cast<const char *>(&value), sizeof(T));
    }

    /** Write a length-prefixed string. */
    void writeString(const std::string &value);

    /** Write a length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    writeVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writePod<uint64_t>(values.size());
        if (!values.empty()) {
            os_.write(reinterpret_cast<const char *>(values.data()),
                      static_cast<std::streamsize>(values.size() * sizeof(T)));
        }
    }

    /** True if the underlying stream is still healthy. */
    bool good() const { return os_.good(); }

  private:
    std::ostream &os_;
};

/** Sequential binary reader over an istream; fatal() on truncated input. */
class BinaryReader
{
  public:
    /** Wrap an externally owned stream. */
    explicit BinaryReader(std::istream &is) : is_(is) {}

    /** Read a trivially copyable value. */
    template <typename T>
    T
    readPod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        is_.read(reinterpret_cast<char *>(&value), sizeof(T));
        if (!is_.good())
            TLP_FATAL("truncated binary stream: wanted ", sizeof(T),
                      " more bytes");
        return value;
    }

    /** Read a length-prefixed string. */
    std::string readString();

    /** Read a length-prefixed vector of trivially copyable elements. */
    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto count = readPod<uint64_t>();
        std::vector<T> values(count);
        if (count > 0) {
            is_.read(reinterpret_cast<char *>(values.data()),
                     static_cast<std::streamsize>(count * sizeof(T)));
            if (!is_.good())
                TLP_FATAL("truncated binary stream: wanted ",
                          count * sizeof(T), " more bytes");
        }
        return values;
    }

  private:
    std::istream &is_;
};

/** Write the standard file header (magic + version). */
void writeHeader(BinaryWriter &writer, uint32_t magic, uint32_t version);

/**
 * Read and validate the standard file header; fatal on a magic mismatch
 * or a version newer than @p max_version.
 *
 * @return the version found in the stream, so readers can keep loading
 *         older formats.
 */
uint32_t readHeader(BinaryReader &reader, uint32_t magic,
                    uint32_t max_version);

} // namespace tlp
