/**
 * @file
 * A tiny command-line flag parser for examples and benches.
 *
 * Flags have the form `--name value` or `--name=value`; boolean flags may
 * be given bare (`--verbose`). Unknown flags are fatal so typos surface
 * immediately.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tlp {

/** Declarative flag registry plus parsed values. */
class ArgParser
{
  public:
    /** @param description one-line program description for --help. */
    explicit ArgParser(std::string description);

    /** Register a string flag with a default. */
    void addString(const std::string &name, const std::string &default_value,
                   const std::string &help);

    /** Register an integer flag with a default. */
    void addInt(const std::string &name, int64_t default_value,
                const std::string &help);

    /** Register a floating-point flag with a default. */
    void addDouble(const std::string &name, double default_value,
                   const std::string &help);

    /** Register a boolean flag (default false unless stated). */
    void addBool(const std::string &name, bool default_value,
                 const std::string &help);

    /** Parse argv; prints help and exits on --help; fatal on bad flags. */
    void parse(int argc, char **argv);

    /** Accessors; fatal if the flag was never registered. */
    std::string getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

  private:
    enum class Kind { String, Int, Double, Bool };

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string help;
    };

    const Flag &find(const std::string &name, Kind kind) const;
    void printHelp(const char *prog) const;

    std::string description_;
    std::map<std::string, Flag> flags_;
};

} // namespace tlp
