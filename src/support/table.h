/**
 * @file
 * ASCII table rendering for benchmark and example output.
 *
 * Every bench prints its results as one of these tables so that the rows
 * match the layout of the paper's tables.
 */
#pragma once

#include <string>
#include <vector>

namespace tlp {

/** Column-aligned ASCII table with an optional title. */
class TextTable
{
  public:
    /** @param title printed above the table; may be empty. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; width may differ from the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;   // empty row == separator
};

} // namespace tlp
