#include "support/rng.h"

#include <cmath>

namespace tlp {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(s);
}

uint64_t
fnv1a(const void *data, size_t size, uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::randint(int64_t n)
{
    TLP_CHECK(n > 0, "randint bound must be positive, got ", n);
    // Rejection sampling to avoid modulo bias.
    const uint64_t bound = static_cast<uint64_t>(n);
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return static_cast<int64_t>(value % bound);
}

int64_t
Rng::randint(int64_t lo, int64_t hi)
{
    TLP_CHECK(lo <= hi, "randint range is empty: [", lo, ", ", hi, "]");
    return lo + randint(hi - lo + 1);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    TLP_CHECK(!weights.empty(), "weightedIndex with empty weights");
    double total = 0.0;
    for (double w : weights) {
        TLP_CHECK(w >= 0.0, "negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        return static_cast<size_t>(randint(weights.size()));
    double target = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

void
Rng::serialize(BinaryWriter &writer) const
{
    for (uint64_t word : state_)
        writer.writePod(word);
    writer.writePod<uint8_t>(has_cached_normal_ ? 1 : 0);
    writer.writePod(cached_normal_);
}

Rng
Rng::deserialize(BinaryReader &reader)
{
    Rng rng;
    for (auto &word : rng.state_)
        word = reader.readPod<uint64_t>();
    rng.has_cached_normal_ = reader.readPod<uint8_t>() != 0;
    rng.cached_normal_ = reader.readPod<double>();
    return rng;
}

} // namespace tlp
