#include "support/thread_pool.h"

#include <algorithm>
#include <memory>

#include "support/config.h"
#include "support/logging.h"

namespace tlp {

namespace {

/** True while this thread is executing a parallelFor chunk. */
thread_local bool in_parallel_region = false;

/** RAII guard for the in_parallel_region flag. */
struct RegionGuard
{
    RegionGuard() { in_parallel_region = true; }
    ~RegionGuard() { in_parallel_region = false; }
};

/** The process-wide pool; replaced by setGlobalThreads. */
std::unique_ptr<ThreadPool> global_pool;

} // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads))
{
    workers_.reserve(static_cast<size_t>(num_threads_ - 1));
    // parallelFor refills chunks_ in place every round; reserving the
    // worst case here keeps the steady state allocation-free.
    chunks_.reserve(static_cast<size_t>(num_threads_));
    for (int w = 0; w < num_threads_ - 1; ++w)
        workers_.emplace_back(
            [this, w] { workerLoop(static_cast<size_t>(w)); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop(size_t worker)
{
    uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_)
            return;
        seen_epoch = epoch_;
        // Chunk 0 belongs to the caller; worker w owns chunk w + 1.
        if (worker + 1 >= chunks_.size())
            continue;
        const auto [chunk_begin, chunk_end] = chunks_[worker + 1];
        const auto *fn = job_;
        lock.unlock();
        std::exception_ptr err;
        try {
            RegionGuard guard;
            (*fn)(chunk_begin, chunk_end);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && !error_)
            error_ = err;
        if (--pending_ == 0)
            done_cv_.notify_one();
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (end <= begin)
        return;
    if (in_parallel_region) {
        TLP_FATAL("nested ThreadPool::parallelFor: parallel regions must "
                  "not submit parallel work");
    }

    const int64_t n = end - begin;
    const int64_t min_chunk = std::max<int64_t>(1, grain);
    const int64_t num_chunks = std::min<int64_t>(
        num_threads_, (n + min_chunk - 1) / min_chunk);

    if (num_chunks <= 1 || workers_.empty()) {
        RegionGuard guard;
        fn(begin, end);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Static partition: near-equal contiguous chunks, front-loaded,
        // filled in place. Capacity was reserved to num_threads_ at
        // construction, so the steady-state resize never reallocates.
        chunks_.resize(static_cast<size_t>(num_chunks)); // tlp-lint: allow(hot-call-alloc) -- capacity reserved at construction; num_chunks <= num_threads_
        const int64_t base = n / num_chunks;
        const int64_t rem = n % num_chunks;
        int64_t pos = begin;
        for (int64_t c = 0; c < num_chunks; ++c) {
            const int64_t size = base + (c < rem ? 1 : 0);
            chunks_[static_cast<size_t>(c)] = {pos, pos + size};
            pos += size;
        }
        job_ = &fn;
        error_ = nullptr;
        pending_ = static_cast<int>(chunks_.size()) - 1;
        ++epoch_;
    }
    work_cv_.notify_all();

    // The caller is participant 0; its exception is captured like any
    // worker's so every chunk finishes before anything propagates.
    std::exception_ptr caller_error;
    {
        const auto [chunk_begin, chunk_end] = chunks_.front();
        RegionGuard guard;
        try {
            fn(chunk_begin, chunk_end);
        } catch (...) {
            caller_error = std::current_exception();
        }
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    if (caller_error && !error_)
        error_ = caller_error;
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

ThreadPool &
ThreadPool::global()
{
    if (!global_pool) {
        // tlp-lint: allow(hot-call-alloc) -- one-time lazy pool creation
        global_pool = std::make_unique<ThreadPool>(configuredThreads());
    }
    return *global_pool;
}

void
ThreadPool::setGlobalThreads(int num_threads)
{
    const int clamped = std::clamp(num_threads, 1, 256);
    if (global_pool && global_pool->numThreads() == clamped)
        return;
    global_pool = std::make_unique<ThreadPool>(clamped);
}

int
ThreadPool::configuredThreads()
{
    const double requested = envOr("TLP_NUM_THREADS", 1.0);
    return std::clamp(static_cast<int>(requested), 1, 256);
}

} // namespace tlp
