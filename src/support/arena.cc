#include "support/arena.h"

#include <algorithm>

namespace tlp {

namespace {

size_t
alignUp(size_t value, size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena(size_t first_block_bytes)
    : first_block_bytes_(std::max<size_t>(kAlign, first_block_bytes))
{
}

void
Arena::grow(size_t min_bytes)
{
    // Geometric growth amortizes the block count; the steady state never
    // reaches here again once the high-water mark has been touched.
    size_t size = std::max(first_block_bytes_, min_bytes);
    if (!blocks_.empty())
        size = std::max(size, blocks_.back().size * 2);
    Block block;
    // The arena's own block growth is the one place scratch memory may
    // come from the heap, and it stops firing once the high-water mark
    // is reached.
    // tlp-lint: allow(hot-alloc) -- arena warm-up block allocation.
    block.storage = std::make_unique<std::byte[]>(size + kAlign);
    const auto addr = reinterpret_cast<uintptr_t>(block.storage.get());
    const uintptr_t aligned = alignUp(addr, kAlign);
    block.base = block.storage.get() + (aligned - addr);
    block.size = size;
    reserved_ += size;
    // tlp-lint: allow(hot-alloc) -- arena warm-up block-list growth.
    blocks_.push_back(std::move(block));
    active_ = blocks_.size() - 1;
}

void *
Arena::allocBytes(size_t bytes)
{
    const size_t granted = std::max<size_t>(alignUp(bytes, kAlign), kAlign);
    // Advance through already-owned blocks before growing: after a
    // rewind the early blocks are empty again and must be reused.
    while (!blocks_.empty() && active_ < blocks_.size() &&
           blocks_[active_].used + granted > blocks_[active_].size) {
        if (active_ + 1 >= blocks_.size())
            break;
        ++active_;
        TLP_CHECK(blocks_[active_].used == 0,
                  "arena cursor advanced onto a dirty block");
    }
    if (blocks_.empty() ||
        blocks_[active_].used + granted > blocks_[active_].size)
        grow(granted);
    Block &block = blocks_[active_];
    void *out = block.base + block.used;
    block.used += granted;
    live_ += granted;
    high_water_ = std::max(high_water_, live_);
    return out;
}

void
Arena::rewind(const Mark &mark)
{
    if (blocks_.empty())
        return;
    TLP_CHECK(mark.block < blocks_.size(), "rewind past the arena");
    for (size_t b = mark.block + 1; b < blocks_.size(); ++b)
        blocks_[b].used = 0;
    blocks_[mark.block].used = mark.used;
    active_ = mark.block;
    live_ = mark.used;
    for (size_t b = 0; b < mark.block; ++b)
        live_ += blocks_[b].used;
}

} // namespace tlp
