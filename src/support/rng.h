/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (schedule sampling, measurement
 * noise, network initialization, data shuffling) draw from explicitly
 * seeded Rng instances so that every experiment is reproducible bit-for-bit
 * across runs and platforms. The core generator is xoshiro256**, seeded via
 * splitmix64.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/logging.h"
#include "support/serialize.h"

namespace tlp {

/** xoshiro256** generator with convenience sampling helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); @p n must be positive. */
    int64_t randint(int64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t randint(int64_t lo, int64_t hi);

    /** Standard normal sample (Box-Muller). */
    double normal();

    /** Normal sample with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability @p p of returning true. */
    bool bernoulli(double p);

    /** Pick a uniformly random element of @p items. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        TLP_CHECK(!items.empty(), "choice from empty vector");
        return items[static_cast<size_t>(randint(items.size()))];
    }

    /** Sample an index according to non-negative weights. */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(randint(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Derive an independent child generator (for parallel components). */
    Rng fork();

    /**
     * Persist the exact generator state (for checkpoint/resume). A
     * deserialized Rng continues the stream bit-identically.
     */
    void serialize(BinaryWriter &writer) const;
    static Rng deserialize(BinaryReader &reader);

  private:
    uint64_t state_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/** splitmix64 step, exposed for hashing uses. */
uint64_t splitmix64(uint64_t &state);

/** Mix two 64-bit values into one (for deterministic per-key noise). */
uint64_t hashCombine(uint64_t a, uint64_t b);

/** FNV-1a hash of a byte range. */
uint64_t fnv1a(const void *data, size_t size, uint64_t seed = 1469598103934665603ull);

} // namespace tlp
