/**
 * @file
 * Global experiment scaling knobs.
 *
 * The paper trains on millions of records per platform; on a laptop-class
 * box, benches default to a reduced scale and can be grown toward paper
 * scale with the TLP_BENCH_SCALE environment variable (a positive double;
 * 1.0 = quick default scale).
 */
#pragma once

#include <cstdint>
#include <string>

namespace tlp {

/** The value of TLP_BENCH_SCALE, clamped to [0.05, 1000]; default 1. */
double benchScale();

/** Scale a default count, with a floor so tiny scales stay functional. */
int64_t scaledCount(int64_t base, int64_t floor = 1);

/** Read an environment variable with a default. */
std::string envOr(const std::string &name, const std::string &fallback);

/** Read a numeric environment variable with a default. */
double envOr(const std::string &name, double fallback);

} // namespace tlp
