/**
 * @file
 * Logging and error-termination helpers.
 *
 * Severity model follows the gem5 convention:
 *   - fatal():  the run cannot continue because of a user error
 *               (bad arguments, missing file); exits with status 2.
 *   - panic():  an internal invariant was violated (a library bug);
 *               aborts so a debugger or core dump can catch it.
 *   - warn()/inform(): non-fatal status messages.
 *
 * CLI tools additionally exit with status 3 (kExitCorruptArtifact) when
 * a recoverable loader reports a corrupt / truncated / version-skewed
 * artifact — scripts can tell "you called it wrong" (2) apart from
 * "your file is damaged" (3).
 */
#pragma once

#include <sstream>
#include <string>

namespace tlp {

/** Process exit code of TLP_FATAL (user error). */
inline constexpr int kExitUserError = 2;

/** Process exit code CLI tools use for damaged/version-skewed artifacts. */
inline constexpr int kExitCorruptArtifact = 3;

/** Log severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/** Set the global minimum severity that is actually printed. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {

/** Emit one formatted log line to stderr if @p level passes the filter. */
void logLine(LogLevel level, const std::string &msg);

/** Print @p msg and exit(kExitUserError). Used for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print @p msg and abort(). Used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Build a string from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Informational message (level Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logLine(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Warning message (level Warn). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logLine(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Debug message (level Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::logLine(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

} // namespace tlp

/** User-error termination: print message with location and exit(2). */
#define TLP_FATAL(...) \
    ::tlp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::tlp::detail::concat(__VA_ARGS__))

/** Internal-bug termination: print message with location and abort(). */
#define TLP_PANIC(...) \
    ::tlp::detail::panicImpl(__FILE__, __LINE__, \
                             ::tlp::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG; panics with a message on failure. */
#define TLP_CHECK(cond, ...) \
    do { \
        if (!(cond)) { \
            ::tlp::detail::panicImpl(__FILE__, __LINE__, \
                ::tlp::detail::concat("check failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)
