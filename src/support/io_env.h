/**
 * @file
 * Deterministic I/O chaos environment for artifact reads and writes
 * (DESIGN.md §14).
 *
 * Every artifact write in the tree funnels through atomicWriteFile
 * (support/serialize) and every file-level artifact load calls
 * IoEnv::checkRead() before opening — io_env is the single seam where
 * disk faults can be injected. An IoFaultProfile draws faults as a pure
 * function of (seed, path fingerprint, per-path op counter): never wall
 * clock, never entropy, independent of thread interleaving — so a chaos
 * run replays exactly, at any TLP_NUM_THREADS.
 *
 * Fault taxonomy (what a real disk can do to a save):
 *   - OpenFail:   creating the temp file fails (permissions, ENOSPC
 *                 on metadata, too many open files).
 *   - TornWrite:  the process dies after byte k of the payload reached
 *                 the temp file — the canonical crash-mid-write.
 *   - FlushFail:  the stream goes bad at flush/close (disk full).
 *   - RenameFail: the final atomic rename fails.
 * Under the tmp+rename discipline none of these can damage the
 * previously committed artifact; the crash-consistency drill
 * (tests/test_corruption.cc, bench_robustness_io) enumerates them all
 * and asserts exactly that.
 *
 * `crash_debris` mode models the process dying at the fault point
 * instead of cleaning up: torn or stranded "<path>.tmp.<pid>.<seq>"
 * files stay on disk, to be reaped later by sweepStaleTemps() (the
 * service does this in recover(); benches do it before regenerating a
 * memo).
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/result.h"

namespace tlp {

/** What a drawn (or armed) I/O fault does to one operation. */
enum class IoFaultKind : uint8_t
{
    None = 0,    ///< the operation proceeds untouched
    OpenFail,    ///< opening the temp (write) or artifact (read) fails
    TornWrite,   ///< only the first k payload bytes reach the temp file
    FlushFail,   ///< flush/close reports failure (disk full)
    RenameFail,  ///< the temp -> final rename fails
};

/** Short stable name of @p kind ("torn-write", ...). */
const char *ioFaultKindName(IoFaultKind kind);

/** One fault decision for one I/O operation. */
struct IoFaultDecision
{
    IoFaultKind kind = IoFaultKind::None;
    /** TornWrite: exact payload bytes kept; < 0 derives k from aux
     *  (aux % (payload_size + 1)), so rate-based draws scale to any
     *  payload without knowing its size up front. */
    int64_t torn_at = -1;
    /** Keyed-hash material for derived values (torn byte count). */
    uint64_t aux = 0;
    /** Leave the torn/stranded temp file on disk (simulated process
     *  death) instead of unlinking it before returning the error. */
    bool crash_debris = false;
};

/**
 * Seeded fault schedule. Whether the Nth operation on a path faults —
 * and how — is a pure function of (seed, fnv1a(path), N); two runs with
 * the same profile and the same per-path operation sequence draw the
 * same faults regardless of scheduling, threads, or wall clock.
 */
struct IoFaultProfile
{
    /** Probability one operation faults, in [0, 1). */
    double fault_rate = 0.0;
    uint64_t seed = 0xd15c;
    /** Injected faults leave crash debris (see IoFaultDecision). */
    bool crash_debris = false;

    bool enabled() const { return fault_rate > 0.0; }

    /** Decide the fate of operation @p op_index on the path with
     *  fingerprint @p path_fp. Faulting operations pick one of the four
     *  kinds uniformly from the same keyed hash. */
    IoFaultDecision draw(uint64_t path_fp, uint64_t op_index) const;

    /** Profile from TLP_IO_FAULT_RATE / TLP_IO_FAULT_SEED /
     *  TLP_IO_CRASH_DEBRIS (all optional; default = no faults). */
    static IoFaultProfile fromEnv();
};

/** Operation tallies, all deterministic given a profile + workload. */
struct IoCounters
{
    int64_t writes_attempted = 0;   ///< atomicWriteFile calls
    int64_t writes_committed = 0;   ///< renames that landed
    int64_t open_faults = 0;        ///< injected OpenFail
    int64_t torn_faults = 0;        ///< injected TornWrite
    int64_t flush_faults = 0;       ///< injected FlushFail
    int64_t rename_faults = 0;      ///< injected RenameFail
    int64_t read_checks = 0;        ///< checkRead calls
    int64_t read_faults = 0;        ///< injected read-open failures
    int64_t temps_swept = 0;        ///< stale temp files unlinked
};

/**
 * The process-wide I/O environment: one profile, per-path op counters,
 * and an optional one-shot armed decision for drills. Thread-safe; the
 * artifact writers are not hot-path TUs, so a mutex per artifact
 * open/draw is free.
 */
class IoEnv
{
  public:
    /** The process singleton, initially IoFaultProfile::fromEnv(). */
    static IoEnv &global();

    /** Install @p profile and reset the per-path op counters (so a
     *  fresh profile starts a fresh deterministic schedule). */
    void setProfile(const IoFaultProfile &profile);
    IoFaultProfile profile() const;

    /** Force @p decision onto the next write, bypassing the profile —
     *  the drill API for enumerating exact fault points. One-shot:
     *  consumed by the next atomicWriteFile. */
    void armNextWrite(const IoFaultDecision &decision);

    /** Decide the fate of a write to @p path (armed decision first,
     *  then the profile) and tally it. Called by atomicWriteFile. */
    IoFaultDecision drawWrite(const std::string &path);

    /** Read-side hook: Ok, or an injected open failure for @p path.
     *  File-level artifact loaders call this before opening. */
    Status checkRead(const std::string &path);

    /** Tally a committed (renamed-into-place) write. */
    void noteWriteCommitted();

    /** Tally @p count stale temp files swept. */
    void noteTempsSwept(int count);

    IoCounters counters() const;
    void resetCounters();

  private:
    IoEnv();

    mutable std::mutex mutex_;
    IoFaultProfile profile_;
    IoFaultDecision armed_;
    bool has_armed_ = false;
    std::map<uint64_t, uint64_t> write_ops_;   ///< path fp -> next op
    std::map<uint64_t, uint64_t> read_ops_;    ///< path fp -> next op
    IoCounters counters_;
};

/**
 * RAII profile install: swaps @p profile into IoEnv::global() (also
 * resetting op counters and tallies) and restores the previous profile
 * on destruction — tests and drills use this so no fault schedule
 * leaks into later code.
 */
class ScopedIoFaults
{
  public:
    explicit ScopedIoFaults(const IoFaultProfile &profile);
    ~ScopedIoFaults();

    ScopedIoFaults(const ScopedIoFaults &) = delete;
    ScopedIoFaults &operator=(const ScopedIoFaults &) = delete;

  private:
    IoFaultProfile saved_;
};

/** True when @p name is "<stem>.tmp.<digits>.<digits>" — the temp-file
 *  shape atomicWriteFile creates. Empty @p stem matches any stem. The
 *  single classifier behind sweepStaleTemps / sweepStaleTempsFor and
 *  the artifact audit (src/artifact), so the doctor and the sweepers
 *  can never disagree about what debris is. */
bool isAtomicTempName(const std::string &name,
                      const std::string &stem = std::string());

/** Evidence generations quarantineArtifact probes before giving up: a
 *  directory already holding this many "<path>.quarantined.N" files is
 *  pathological, and failing loudly beats an unbounded scan. */
inline constexpr int kQuarantineMaxGenerations = 10000;

/**
 * Move a damaged artifact aside as quarantine evidence: renames @p path
 * to the first free "<path>.quarantined.N" (N = 1, 2, ...), so repeated
 * quarantines of the same artifact never overwrite earlier evidence.
 * Returns the jail path, or IoError when the rename fails or every
 * generation up to @p max_generations is already taken (the artifact
 * and all existing evidence are left untouched in that case).
 */
Result<std::string>
quarantineArtifact(const std::string &path,
                   int max_generations = kQuarantineMaxGenerations);

/**
 * Unlink every stale "<name>.tmp.<pid>.<seq>" file directly under
 * @p dir — debris a crash between atomicWriteFile's open and rename
 * strands forever. Returns the number removed. Only call on a
 * directory the caller owns (no other live writer), e.g. a service
 * directory during recover().
 */
int sweepStaleTemps(const std::string &dir);

/** Like sweepStaleTemps but only for temps of one artifact: unlinks
 *  "<artifact_path>.tmp.<pid>.<seq>" files (used before regenerating a
 *  bench memo in shared /tmp, where a directory-wide sweep could race
 *  other processes' live temps). Returns the number removed. */
int sweepStaleTempsFor(const std::string &artifact_path);

} // namespace tlp
