#include "support/str_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace tlp {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string result;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            result += sep;
        result += parts[i];
    }
    return result;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
strip(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int size = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string result(static_cast<size_t>(size), '\0');
    std::vsnprintf(result.data(), static_cast<size_t>(size) + 1, fmt,
                   args_copy);
    va_end(args_copy);
    return result;
}

std::string
formatDouble(double value, int digits)
{
    return strFormat("%.*f", digits, value);
}

std::string
humanCount(double value)
{
    if (value >= 1e9)
        return strFormat("%.1fG", value / 1e9);
    if (value >= 1e6)
        return strFormat("%.1fM", value / 1e6);
    if (value >= 1e3)
        return strFormat("%.1fK", value / 1e3);
    return strFormat("%.0f", value);
}

} // namespace tlp
