/**
 * @file
 * A fixed-size worker pool with deterministic static partitioning.
 *
 * parallelFor() splits an index range into at most numThreads()
 * contiguous chunks and runs them on the calling thread plus the pool
 * workers. Partitioning is a pure function of (range, grain, thread
 * count) — never of runtime timing — and callers arrange for each chunk
 * to write a disjoint output region, so results are bit-identical for
 * any thread count. Exceptions thrown by chunk bodies are captured and
 * rethrown on the calling thread after every chunk has finished.
 *
 * The global() pool is sized from the TLP_NUM_THREADS environment
 * variable (default 1: serial, matching the seed behaviour) and is
 * reused across calls; setGlobalThreads() resizes it (main thread only,
 * e.g. for a --threads flag or a thread-sweep bench). Nested
 * parallelFor() calls are a fatal error: the NN kernels that use the
 * pool are never re-entered, and silently serializing nested loops
 * would hide misuse.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tlp {

/** Reusable fixed-size thread pool with static work partitioning. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads - 1 workers (the caller is participant 0). */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total participants per parallelFor (workers + calling thread). */
    int
    numThreads() const
    {
        return num_threads_;
    }

    /**
     * Run @p fn over disjoint contiguous chunks of [begin, end). Chunks
     * hold at least @p grain indices (except possibly when the range is
     * smaller than grain), so small ranges stay on the calling thread.
     * Fatal when called from inside another parallelFor.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** The process-wide pool, created on first use (main thread only). */
    static ThreadPool &global();

    /** Resize the global pool (main thread only, between parallel work). */
    static void setGlobalThreads(int num_threads);

    /** Thread count requested by TLP_NUM_THREADS, clamped to [1, 256]. */
    static int configuredThreads();

  private:
    void workerLoop(size_t worker);

    int num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;   ///< wakes workers on a new epoch
    std::condition_variable done_cv_;   ///< wakes the caller on completion
    uint64_t epoch_ = 0;
    int pending_ = 0;                   ///< worker chunks still running
    bool stop_ = false;
    const std::function<void(int64_t, int64_t)> *job_ = nullptr;
    std::vector<std::pair<int64_t, int64_t>> chunks_;
    std::exception_ptr error_;
};

} // namespace tlp
