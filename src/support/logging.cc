#include "support/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tlp {

namespace {

LogLevel global_level = LogLevel::Info;
std::mutex log_mutex;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      default:              return "?";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

namespace detail {

void
logLine(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(global_level))
        return;
    std::lock_guard<std::mutex> guard(log_mutex);
    std::fprintf(stderr, "[tlp:%s] %s\n", levelTag(level), msg.c_str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[tlp:fatal] %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(kExitUserError);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[tlp:panic] %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

} // namespace detail

} // namespace tlp
