/**
 * @file
 * Streaming statistics accumulators and a fixed-bin histogram.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tlp {

/** Welford-style running mean/variance plus min/max. */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double value);

    /** Number of observations so far. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population variance (0 when fewer than two samples). */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Histogram over integer keys (e.g., sequence lengths). */
class IntHistogram
{
  public:
    /** Count one occurrence of @p key. */
    void add(int64_t key);

    /** Number of occurrences of @p key. */
    uint64_t countOf(int64_t key) const;

    /** Total observations. */
    uint64_t total() const { return total_; }

    /** Smallest observed key (0 when empty). */
    int64_t minKey() const;

    /** Largest observed key (0 when empty). */
    int64_t maxKey() const;

    /** Key with the highest count (ties broken toward smaller keys). */
    int64_t modeKey() const;

    /** All (key, count) pairs in ascending key order. */
    std::vector<std::pair<int64_t, uint64_t>> sorted() const;

    /** ASCII bar-chart rendering, @p width columns for the tallest bar. */
    std::string render(int width = 50) const;

  private:
    std::vector<std::pair<int64_t, uint64_t>> &mutableBins();

    std::vector<std::pair<int64_t, uint64_t>> bins_;
    uint64_t total_ = 0;
};

/** Pearson correlation of two equally sized series. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Spearman rank correlation of two equally sized series. */
double spearman(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace tlp
