/**
 * @file
 * Bump-pointer scratch arena for the inference hot path (DESIGN.md §13).
 *
 * The scoring loop runs the same block-sized forward pass millions of
 * times; allocating its activation buffers from the general heap costs
 * an allocator round-trip (and an eventual free) per tensor per
 * candidate. An Arena turns that into pointer arithmetic: allocations
 * bump a cursor through geometrically-grown blocks, checkpoint()/
 * rewind() recycle everything a block forward allocated in O(1), and
 * after the first few calls have grown the arena to its high-water mark
 * the steady state performs zero heap allocations.
 *
 * Returned pointers are 64-byte aligned (cache-line / AVX-512 friendly)
 * and the memory is uninitialized. Only trivially-destructible types
 * belong in an arena — nothing runs destructors. Not thread-safe: use
 * one Arena per worker (see FusedTlpInference's arena pool).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/logging.h"

namespace tlp {

/** Reusable bump allocator with checkpoint/rewind. */
class Arena
{
  public:
    /** Alignment of every returned pointer. */
    static constexpr size_t kAlign = 64;

    /** @p first_block_bytes sizes the first block; later blocks double. */
    explicit Arena(size_t first_block_bytes = size_t{1} << 20);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Cursor position; rewind() frees everything allocated after it. */
    struct Mark
    {
        size_t block = 0;
        size_t used = 0;
    };

    /** Uninitialized storage for @p count objects of trivial type T. */
    template <typename T>
    T *
    alloc(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arenas never run destructors");
        static_assert(alignof(T) <= kAlign, "over-aligned type");
        return static_cast<T *>(allocBytes(count * sizeof(T)));
    }

    /** Uninitialized, kAlign-aligned storage for @p count floats. */
    float *
    allocFloats(size_t count)
    {
        return alloc<float>(count);
    }

    /** Raw kAlign-aligned uninitialized storage. */
    void *allocBytes(size_t bytes);

    /** Current cursor, for a later rewind(). */
    Mark checkpoint() const { return {active_, activeUsed()}; }

    /**
     * Roll the cursor back to @p mark. Blocks stay owned (capacity is
     * retained for reuse); everything allocated after the mark is
     * invalidated.
     */
    void rewind(const Mark &mark);

    /** rewind() to empty. */
    void
    reset()
    {
        rewind(Mark{});
    }

    /** Blocks currently owned. */
    size_t blockCount() const { return blocks_.size(); }

    /** Total bytes reserved from the heap across all blocks. */
    size_t reservedBytes() const { return reserved_; }

    /** Largest concurrently-live byte count ever observed. */
    size_t highWaterBytes() const { return high_water_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> storage;
        std::byte *base = nullptr;   ///< kAlign-aligned into storage
        size_t size = 0;             ///< usable bytes past base
        size_t used = 0;
    };

    size_t
    activeUsed() const
    {
        return blocks_.empty() ? 0 : blocks_[active_].used;
    }

    /** Append a block of at least @p min_bytes usable capacity. */
    void grow(size_t min_bytes);

    std::vector<Block> blocks_;
    size_t active_ = 0;          ///< index of the block being bumped
    size_t first_block_bytes_;
    size_t live_ = 0;            ///< bytes allocated since last reset
    size_t reserved_ = 0;
    size_t high_water_ = 0;
};

} // namespace tlp
