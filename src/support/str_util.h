/**
 * @file
 * Small string helpers used across the library.
 */
#pragma once

#include <string>
#include <vector>

namespace tlp {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char sep);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/** Strip ASCII whitespace from both ends. */
std::string strip(const std::string &text);

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a double with @p digits significant decimal places. */
std::string formatDouble(double value, int digits = 4);

/** Human-readable form of a large count, e.g. 1536000 -> "1.5M". */
std::string humanCount(double value);

} // namespace tlp
