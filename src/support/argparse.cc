#include "support/argparse.h"

#include <cstdio>
#include <cstdlib>

#include "support/logging.h"
#include "support/str_util.h"

namespace tlp {

ArgParser::ArgParser(std::string description)
    : description_(std::move(description))
{
}

void
ArgParser::addString(const std::string &name, const std::string &default_value,
                     const std::string &help)
{
    flags_[name] = Flag{Kind::String, default_value, help};
}

void
ArgParser::addInt(const std::string &name, int64_t default_value,
                  const std::string &help)
{
    flags_[name] = Flag{Kind::Int, std::to_string(default_value), help};
}

void
ArgParser::addDouble(const std::string &name, double default_value,
                     const std::string &help)
{
    flags_[name] = Flag{Kind::Double, std::to_string(default_value), help};
}

void
ArgParser::addBool(const std::string &name, bool default_value,
                   const std::string &help)
{
    flags_[name] = Flag{Kind::Bool, default_value ? "1" : "0", help};
}

void
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(argv[0]);
            std::exit(0);
        }
        if (!startsWith(arg, "--"))
            TLP_FATAL("unexpected positional argument: ", arg);
        arg = arg.substr(2);
        std::string name = arg;
        std::string value;
        bool has_value = false;
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            TLP_FATAL("unknown flag --", name, " (try --help)");
        if (!has_value) {
            if (it->second.kind == Kind::Bool) {
                value = "1";
            } else {
                if (i + 1 >= argc)
                    TLP_FATAL("flag --", name, " expects a value");
                value = argv[++i];
            }
        }
        if (it->second.kind == Kind::Bool &&
            (value == "true" || value == "yes")) {
            value = "1";
        }
        if (it->second.kind == Kind::Bool &&
            (value == "false" || value == "no")) {
            value = "0";
        }
        it->second.value = value;
    }
}

const ArgParser::Flag &
ArgParser::find(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        TLP_PANIC("flag --", name, " was never registered");
    if (it->second.kind != kind)
        TLP_PANIC("flag --", name, " accessed with wrong type");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

bool
ArgParser::getBool(const std::string &name) const
{
    return find(name, Kind::Bool).value == "1";
}

void
ArgParser::printHelp(const char *prog) const
{
    std::printf("%s — %s\n\nflags:\n", prog, description_.c_str());
    for (const auto &[name, flag] : flags_) {
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(), flag.value.c_str());
    }
}

} // namespace tlp
