#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/logging.h"

namespace tlp {

void
RunningStat::add(double value)
{
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
IntHistogram::add(int64_t key)
{
    auto it = std::lower_bound(
        bins_.begin(), bins_.end(), key,
        [](const auto &bin, int64_t k) { return bin.first < k; });
    if (it != bins_.end() && it->first == key) {
        ++it->second;
    } else {
        bins_.insert(it, {key, 1});
    }
    ++total_;
}

uint64_t
IntHistogram::countOf(int64_t key) const
{
    auto it = std::lower_bound(
        bins_.begin(), bins_.end(), key,
        [](const auto &bin, int64_t k) { return bin.first < k; });
    if (it != bins_.end() && it->first == key)
        return it->second;
    return 0;
}

int64_t
IntHistogram::minKey() const
{
    return bins_.empty() ? 0 : bins_.front().first;
}

int64_t
IntHistogram::maxKey() const
{
    return bins_.empty() ? 0 : bins_.back().first;
}

int64_t
IntHistogram::modeKey() const
{
    int64_t best_key = 0;
    uint64_t best_count = 0;
    for (const auto &[key, count] : bins_) {
        if (count > best_count) {
            best_count = count;
            best_key = key;
        }
    }
    return best_key;
}

std::vector<std::pair<int64_t, uint64_t>>
IntHistogram::sorted() const
{
    return bins_;
}

std::string
IntHistogram::render(int width) const
{
    std::ostringstream os;
    uint64_t peak = 0;
    for (const auto &[key, count] : bins_)
        peak = std::max(peak, count);
    for (const auto &[key, count] : bins_) {
        const int bar =
            peak == 0 ? 0
                      : static_cast<int>(static_cast<double>(count) /
                                         static_cast<double>(peak) * width);
        os << "  " << key << "\t" << count << "\t";
        for (int i = 0; i < bar; ++i)
            os << '#';
        os << '\n';
    }
    return os.str();
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    TLP_CHECK(xs.size() == ys.size(), "pearson: size mismatch");
    const size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) /
                      static_cast<double>(n);
    const double my = std::accumulate(ys.begin(), ys.end(), 0.0) /
                      static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double>
ranks(const std::vector<double> &values)
{
    const size_t n = values.size();
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    std::vector<double> rank(n, 0.0);
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        // Average rank over the tie group.
        const double r = (static_cast<double>(i) + static_cast<double>(j)) /
                         2.0;
        for (size_t k = i; k <= j; ++k)
            rank[order[k]] = r;
        i = j + 1;
    }
    return rank;
}

} // namespace

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    TLP_CHECK(xs.size() == ys.size(), "spearman: size mismatch");
    return pearson(ranks(xs), ranks(ys));
}

} // namespace tlp
