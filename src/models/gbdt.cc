#include "models/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.h"

namespace tlp::model {

Gbdt::Gbdt(GbdtOptions options) : options_(options) {}

int
Gbdt::buildNode(Tree &tree, const std::vector<float> &features, int dim,
                const std::vector<float> &residuals,
                std::vector<int> &samples, int begin, int end, int depth)
{
    const int count = end - begin;
    double sum = 0.0;
    for (int i = begin; i < end; ++i)
        sum += residuals[static_cast<size_t>(
            samples[static_cast<size_t>(i)])];
    const double mean = sum / std::max(1, count);

    TreeNode node;
    node.value = static_cast<float>(mean);
    const int node_index = static_cast<int>(tree.size());
    tree.push_back(node);

    if (depth >= options_.max_depth ||
        count < 2 * options_.min_samples_leaf) {
        return node_index;
    }

    // Exact greedy split: minimize total SSE = maximize sum^2/n terms.
    double best_gain = options_.min_gain;
    int best_feature = -1;
    float best_threshold = 0.0f;
    const double parent_score = sum * sum / count;

    std::vector<std::pair<float, int>> order(
        static_cast<size_t>(count));
    for (int f = 0; f < dim; ++f) {
        for (int i = 0; i < count; ++i) {
            const int sample = samples[static_cast<size_t>(begin + i)];
            order[static_cast<size_t>(i)] = {
                features[static_cast<size_t>(sample) *
                             static_cast<size_t>(dim) +
                         static_cast<size_t>(f)],
                sample};
        }
        std::sort(order.begin(), order.end());
        if (order.front().first == order.back().first)
            continue;   // constant feature
        double left_sum = 0.0;
        for (int i = 0; i + 1 < count; ++i) {
            left_sum += residuals[static_cast<size_t>(
                order[static_cast<size_t>(i)].second)];
            const int left_n = i + 1;
            const int right_n = count - left_n;
            if (left_n < options_.min_samples_leaf ||
                right_n < options_.min_samples_leaf) {
                continue;
            }
            const float here = order[static_cast<size_t>(i)].first;
            const float next = order[static_cast<size_t>(i + 1)].first;
            if (here == next)
                continue;   // cannot split between equal values
            const double right_sum = sum - left_sum;
            const double gain = left_sum * left_sum / left_n +
                                right_sum * right_sum / right_n -
                                parent_score;
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = f;
                best_threshold = 0.5f * (here + next);
            }
        }
    }

    if (best_feature < 0)
        return node_index;

    // Partition samples in place.
    const auto middle = std::partition(
        samples.begin() + begin, samples.begin() + end,
        [&](int sample) {
            return features[static_cast<size_t>(sample) *
                                static_cast<size_t>(dim) +
                            static_cast<size_t>(best_feature)] <=
                   best_threshold;
        });
    const int split = static_cast<int>(middle - samples.begin());
    if (split == begin || split == end)
        return node_index;   // degenerate partition

    tree[static_cast<size_t>(node_index)].feature = best_feature;
    tree[static_cast<size_t>(node_index)].threshold = best_threshold;
    const int left = buildNode(tree, features, dim, residuals, samples,
                               begin, split, depth + 1);
    const int right = buildNode(tree, features, dim, residuals, samples,
                                split, end, depth + 1);
    tree[static_cast<size_t>(node_index)].left = left;
    tree[static_cast<size_t>(node_index)].right = right;
    return node_index;
}

void
Gbdt::fit(const std::vector<float> &features, int rows, int dim,
          const std::vector<float> &targets)
{
    TLP_CHECK(rows > 0 && dim > 0, "empty training set");
    TLP_CHECK(static_cast<int64_t>(features.size()) ==
                  static_cast<int64_t>(rows) * dim,
              "feature matrix shape mismatch");
    TLP_CHECK(static_cast<int>(targets.size()) == rows,
              "target size mismatch");
    trees_.clear();
    dim_ = dim;

    base_ = std::accumulate(targets.begin(), targets.end(), 0.0) / rows;
    std::vector<float> residuals(targets);
    for (auto &r : residuals)
        r -= static_cast<float>(base_);

    std::vector<int> samples(static_cast<size_t>(rows));
    for (int t = 0; t < options_.trees; ++t) {
        std::iota(samples.begin(), samples.end(), 0);
        Tree tree;
        buildNode(tree, features, dim, residuals, samples, 0, rows, 0);
        // Shrink leaves and update residuals.
        for (auto &node : tree)
            node.value *= static_cast<float>(options_.learning_rate);
        bool any_split = false;
        for (const auto &node : tree)
            any_split |= node.feature >= 0;
        for (int i = 0; i < rows; ++i) {
            const float *row = features.data() +
                               static_cast<size_t>(i) *
                                   static_cast<size_t>(dim);
            int cursor = 0;
            while (tree[static_cast<size_t>(cursor)].feature >= 0) {
                const auto &node = tree[static_cast<size_t>(cursor)];
                cursor = row[node.feature] <= node.threshold ? node.left
                                                             : node.right;
            }
            residuals[static_cast<size_t>(i)] -=
                tree[static_cast<size_t>(cursor)].value;
        }
        trees_.push_back(std::move(tree));
        if (!any_split)
            break;   // nothing left to learn
    }
}

double
Gbdt::predictRow(const float *row) const
{
    double prediction = base_;
    for (const auto &tree : trees_) {
        int cursor = 0;
        while (tree[static_cast<size_t>(cursor)].feature >= 0) {
            const auto &node = tree[static_cast<size_t>(cursor)];
            cursor = row[node.feature] <= node.threshold ? node.left
                                                         : node.right;
        }
        prediction += tree[static_cast<size_t>(cursor)].value;
    }
    return prediction;
}

std::vector<double>
Gbdt::predict(const std::vector<float> &features, int rows, int dim) const
{
    TLP_CHECK(dim == dim_ || trees_.empty(), "feature width mismatch");
    std::vector<double> predictions(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
        predictions[static_cast<size_t>(i)] = predictRow(
            features.data() +
            static_cast<size_t>(i) * static_cast<size_t>(dim));
    }
    return predictions;
}

} // namespace tlp::model
