/**
 * @file
 * Inference-only fused forward pass for the TLP net (DESIGN.md §13).
 *
 * The training forward walks the autograd tape: every op allocates a
 * Node, copies for reshapes, and records a backward closure — all waste
 * when the search loop only wants scores. FusedTlpInference packs the
 * net's parameters into one contiguous slab and replays the exact
 * forward arithmetic (attention backbone, residual blocks, task head)
 * over arena-allocated scratch in fixed candidate blocks, with fused
 * linear+bias(+relu) epilogues and no graph bookkeeping.
 *
 * Equivalence contract: predictions are bit-identical to
 * TlpNet::forwardTask. Every contractible loop (gemm, layer norm) runs
 * through the same noinline kernels the interpreted ops call
 * (kern::gemmRows, iops::softmaxRows/layerNormRows); the remaining maps
 * are contraction-free restatements; and rows are independent through
 * the whole network, so any block size — and any thread partitioning of
 * blocks — yields the interpreted full-batch bits. tests/test_infer.cc
 * pins the equality, CI's Release job re-asserts it.
 *
 * Parallelism: blocks fan out over the global ThreadPool (this is a
 * top-level call site — the serial micro-kernels never nest a pool),
 * each chunk drawing a private Arena from a pool sized to the worker
 * count. Which arena serves which chunk is scheduling-dependent, but
 * arenas hold only scratch, so values never depend on the assignment.
 *
 * The LSTM backbone stays on the interpreted path (usable() == false):
 * its sequential recurrence gains little from fusion and is not on the
 * tuning hot path.
 */
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "models/tlp_model.h"
#include "support/arena.h"

namespace tlp::model {

/** Packed-weight, arena-backed, allocation-free TlpNet forward. */
class FusedTlpInference
{
  public:
    /** Packs @p net's current parameters (attention backbones only). */
    explicit FusedTlpInference(std::shared_ptr<TlpNet> net);

    /** False for LSTM backbones: callers must use the interpreted path. */
    bool usable() const { return !config_.lstm_backbone; }

    /**
     * Re-copy the packed parameters from the net. Cheap (one memcpy per
     * parameter); call whenever the net's parameter fingerprint changes
     * (continued training, snapshot hot-swap).
     */
    void repack();

    /**
     * Score @p rows feature rows (each config.seq_len * config.emb_size
     * wide, contiguous) with head @p task into @p out, bit-identical to
     * predictTlpNet over the same rows.
     */
    void predict(const float *features, int64_t rows, int task,
                 double *out);

    /** Candidates per forward block (fixes scratch high-water size). */
    static constexpr int64_t kRowsPerBlock = 16;

  private:
    /** One packed affine layer: weight [in, out] then bias [out]. */
    struct Affine
    {
        const float *w = nullptr;
        const float *b = nullptr;
    };

    /** Pointers into packed_ for gamma/beta of one layer norm. */
    struct Norm
    {
        const float *gamma = nullptr;
        const float *beta = nullptr;
    };

    void forwardBlock(Arena &arena, const float *x, int64_t n, int task,
                      double *out);

    std::shared_ptr<TlpNet> net_;
    TlpNetConfig config_;
    /** Parameter handles in snapshot order, gathered once: Tensors
     *  share their node, so repack() reads the live weights without
     *  rebuilding the module walk (which allocates). */
    std::vector<nn::Tensor> params_;
    std::vector<float> packed_;  ///< every parameter, contiguous
    Affine up1_, up2_;
    Affine q_, k_, v_, attn_out_;
    Norm attn_norm_;
    struct Residual
    {
        Affine fc1, fc2;
        Norm norm;
    };
    std::vector<Residual> residuals_;
    struct Head
    {
        Affine fc1, fc2;
    };
    std::vector<Head> heads_;
    /** One scratch arena per pool worker; grown on demand at warm-up. */
    std::vector<std::unique_ptr<Arena>> arenas_;
};

} // namespace tlp::model
