#include "models/snapshot.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "support/io_env.h"
#include <sstream>

namespace tlp::model {

namespace {

constexpr uint32_t kConfigTag = sectionTag("CONF");
constexpr uint32_t kParamsTag = sectionTag("PARM");
constexpr uint32_t kEndTag = sectionTag("TEND");

// Architecture discriminator stored in the config section.
constexpr uint8_t kArchTlp = 0;
constexpr uint8_t kArchMlp = 1;

/**
 * Reject nonsensical dimensions before any tensor is allocated: a
 * corrupt config must not be able to request multi-GB parameter
 * buffers. (CRC catches random corruption first; this is the backstop.)
 */
int
checkedDim(int64_t value, const char *what, int64_t lo, int64_t hi)
{
    if (value < lo || value > hi) {
        throw SerializeError(ErrorCode::Corrupt,
                             std::string("snapshot config field ") + what +
                                 " = " + std::to_string(value) +
                                 " outside [" + std::to_string(lo) + ", " +
                                 std::to_string(hi) + "]");
    }
    return static_cast<int>(value);
}

uint8_t
readArch(BinaryReader &reader, uint8_t want, const char *want_name)
{
    const auto arch = reader.readPod<uint8_t>();
    if (arch != want) {
        throw SerializeError(ErrorCode::Invalid,
                             std::string("snapshot holds a different "
                                         "architecture than the "
                                         "requested ") +
                                 want_name + " model");
    }
    return arch;
}

/** Shared tail: header + CONF (via @p config) + PARM + TEND. */
template <typename WriteConfig>
void
writeSnapshot(std::ostream &os, nn::Module &net, WriteConfig &&config)
{
    BinaryWriter writer(os);
    writeHeader(writer, kSnapshotMagic, kSnapshotVersion);
    writeSection(writer, kConfigTag, config);
    writeSection(writer, kParamsTag,
                 [&](BinaryWriter &w) { net.saveParameters(w); });
    writeSectionRaw(writer, kEndTag, "");
}

/**
 * Shared load loop: validates framing and hands the CONF / PARM
 * payloads to @p parse_config / @p parse_params in file order.
 */
template <typename ParseConfig, typename ParseParams>
void
readSnapshot(std::istream &is, ParseConfig &&parse_config,
             ParseParams &&parse_params)
{
    BinaryReader reader(is);
    readHeader(reader, kSnapshotMagic, kSnapshotVersion, kSnapshotVersion);
    bool seen_config = false;
    bool seen_params = false;
    bool seen_end = false;
    while (!seen_end && reader.remaining() > 0) {
        Section section = readSection(reader);
        if (!section.crc_ok) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "checksum mismatch in snapshot section " +
                                     sectionTagName(section.tag));
        }
        std::istringstream payload(section.payload);
        BinaryReader body(payload);
        if (section.tag == kConfigTag) {
            parse_config(body);
            seen_config = true;
        } else if (section.tag == kParamsTag) {
            if (!seen_config) {
                throw SerializeError(ErrorCode::Corrupt,
                                     "snapshot parameters before config");
            }
            parse_params(body);
            seen_params = true;
        } else if (section.tag == kEndTag) {
            seen_end = true;
        }
        // Unknown tags: skipped for forward compatibility.
    }
    if (!seen_config || !seen_params || !seen_end) {
        throw SerializeError(ErrorCode::Truncated,
                             "snapshot is missing required sections");
    }
}

} // namespace

void
saveTlpSnapshot(std::ostream &os, TlpNet &net)
{
    const TlpNetConfig &config = net.config();
    writeSnapshot(os, net, [&](BinaryWriter &w) {
        w.writePod<uint8_t>(kArchTlp);
        w.writePod<int32_t>(config.seq_len);
        w.writePod<int32_t>(config.emb_size);
        w.writePod<int32_t>(config.hidden);
        w.writePod<int32_t>(config.heads);
        w.writePod<uint8_t>(config.lstm_backbone ? 1 : 0);
        w.writePod<int32_t>(config.residual_blocks);
        w.writePod<int32_t>(config.head_hidden);
        w.writePod<int32_t>(config.num_tasks);
    });
}

Status
saveTlpSnapshot(const std::string &path, TlpNet &net)
{
    return atomicWriteFile(
        path, [&](std::ostream &os) { saveTlpSnapshot(os, net); });
}

Result<std::shared_ptr<TlpNet>>
loadTlpSnapshot(std::istream &is)
{
    std::shared_ptr<TlpNet> net;
    const Status status = guardedParse([&] {
        readSnapshot(
            is,
            [&](BinaryReader &body) {
                readArch(body, kArchTlp, "TLP");
                TlpNetConfig config;
                config.seq_len = checkedDim(body.readPod<int32_t>(),
                                            "seq_len", 1, 4096);
                config.emb_size = checkedDim(body.readPod<int32_t>(),
                                             "emb_size", 1, 4096);
                config.hidden = checkedDim(body.readPod<int32_t>(),
                                           "hidden", 1, 1 << 14);
                config.heads = checkedDim(body.readPod<int32_t>(),
                                          "heads", 1, 256);
                config.lstm_backbone = body.readPod<uint8_t>() != 0;
                config.residual_blocks = checkedDim(
                    body.readPod<int32_t>(), "residual_blocks", 0, 64);
                config.head_hidden = checkedDim(body.readPod<int32_t>(),
                                                "head_hidden", 1, 1 << 14);
                config.num_tasks = checkedDim(body.readPod<int32_t>(),
                                              "num_tasks", 1, 4096);
                Rng rng(0);
                net = std::make_shared<TlpNet>(config, rng);
            },
            [&](BinaryReader &body) { net->loadParameters(body); });
    });
    if (!status.ok())
        return status;
    return net;
}

Result<std::shared_ptr<TlpNet>>
loadTlpSnapshot(const std::string &path)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return loadTlpSnapshot(is);
}

Status
probeSnapshotHealth(TlpNet &net)
{
    // Fixed synthetic batch (no Rng: the probe must be a pure function
    // of the parameters so two probes of the same snapshot agree).
    const TlpNetConfig &config = net.config();
    const int batch = 4;
    const int width = config.seq_len * config.emb_size;
    std::vector<float> data(static_cast<size_t>(batch) *
                            static_cast<size_t>(width));
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = 0.1f * static_cast<float>(static_cast<int>(i % 13) - 6);
    nn::Tensor x = nn::Tensor::fromData({batch, width}, std::move(data));

    const nn::Tensor scores = net.forwardTask(x, 0);
    if (scores.numel() != batch) {
        return Status::error(ErrorCode::Invalid,
                             "snapshot probe: head 0 produced " +
                                 std::to_string(scores.numel()) +
                                 " scores for a batch of " +
                                 std::to_string(batch));
    }
    float lo = scores.value()[0];
    float hi = scores.value()[0];
    for (const float score : scores.value()) {
        if (!std::isfinite(score)) {
            return Status::error(ErrorCode::Invalid,
                                 "snapshot probe: non-finite score "
                                 "(poisoned parameters)");
        }
        lo = std::min(lo, score);
        hi = std::max(hi, score);
    }
    if (!(hi - lo > 1e-12f)) {
        return Status::error(ErrorCode::Invalid,
                             "snapshot probe: degenerate scores (all " +
                                 std::to_string(hi) +
                                 "); parameters look zeroed");
    }
    return Status();
}

void
saveMlpSnapshot(std::ostream &os, TensetMlpNet &net)
{
    const MlpConfig &config = net.config();
    writeSnapshot(os, net, [&](BinaryWriter &w) {
        w.writePod<uint8_t>(kArchMlp);
        w.writePod<int32_t>(config.input);
        w.writePod<int32_t>(config.hidden);
        w.writePod<int32_t>(config.layers);
    });
}

Status
saveMlpSnapshot(const std::string &path, TensetMlpNet &net)
{
    return atomicWriteFile(
        path, [&](std::ostream &os) { saveMlpSnapshot(os, net); });
}

Result<std::shared_ptr<TensetMlpNet>>
loadMlpSnapshot(std::istream &is)
{
    std::shared_ptr<TensetMlpNet> net;
    const Status status = guardedParse([&] {
        readSnapshot(
            is,
            [&](BinaryReader &body) {
                readArch(body, kArchMlp, "TenSet-MLP");
                MlpConfig config;
                config.input = checkedDim(body.readPod<int32_t>(),
                                          "input", 1, 1 << 16);
                config.hidden = checkedDim(body.readPod<int32_t>(),
                                           "hidden", 1, 1 << 14);
                config.layers = checkedDim(body.readPod<int32_t>(),
                                           "layers", 1, 64);
                Rng rng(0);
                net = std::make_shared<TensetMlpNet>(config, rng);
            },
            [&](BinaryReader &body) { net->loadParameters(body); });
    });
    if (!status.ok())
        return status;
    return net;
}

Result<std::shared_ptr<TensetMlpNet>>
loadMlpSnapshot(const std::string &path)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return loadMlpSnapshot(is);
}

} // namespace tlp::model
