#include "models/pretrain.h"

#include <cmath>

namespace tlp::model {

using nn::Tensor;

namespace {

enum class Pretext { Gpt, Bert };

double
pretrain(TlpNet &net, const data::LabeledSet &set,
         const PretrainOptions &options, Pretext pretext)
{
    const auto &config = net.config();
    TLP_CHECK(set.feature_dim == config.seq_len * config.emb_size,
              "feature width mismatch");
    Rng rng(options.seed);

    // Reconstruction head: hidden -> embedding (discarded afterwards).
    nn::Linear recon(config.hidden, config.emb_size, rng);
    auto params = net.backboneParameters();
    for (Tensor &param : recon.parameters())
        params.push_back(param);
    nn::AdamOptions adam_options;
    adam_options.lr = options.lr;
    nn::Adam adam(params, adam_options);
    TrainSupervisor supervisor(params, adam, options.supervisor);

    std::vector<int> order(static_cast<size_t>(set.rows));
    for (int r = 0; r < set.rows; ++r)
        order[static_cast<size_t>(r)] = r;

    const int l = config.seq_len;
    const int e = config.emb_size;
    const float nan = std::numeric_limits<float>::quiet_NaN();

    double epoch_loss = 0.0;
    for (int epoch = 0; epoch < options.epochs && !supervisor.stopped();
         ++epoch) {
        rng.shuffle(order);
        double total = 0.0;
        int64_t batches = 0;
        for (size_t start = 0; start < order.size();
             start += static_cast<size_t>(options.batch_size)) {
            const size_t end =
                std::min(order.size(),
                         start + static_cast<size_t>(options.batch_size));
            const int b = static_cast<int>(end - start);

            std::vector<float> input;
            std::vector<float> targets;
            input.reserve(static_cast<size_t>(b) * set.feature_dim);
            targets.reserve(static_cast<size_t>(b) * set.feature_dim);
            for (size_t i = start; i < end; ++i) {
                const float *row = set.row(order[i]);
                if (pretext == Pretext::Gpt) {
                    input.insert(input.end(), row, row + set.feature_dim);
                    // Predict row t+1 from rows <= t.
                    for (int t = 0; t < l; ++t) {
                        for (int c = 0; c < e; ++c) {
                            targets.push_back(
                                t + 1 < l ? row[(t + 1) * e + c] : nan);
                        }
                    }
                } else {
                    // BERT: zero masked rows, reconstruct only them.
                    for (int t = 0; t < l; ++t) {
                        const bool masked =
                            rng.bernoulli(options.mask_prob);
                        for (int c = 0; c < e; ++c) {
                            input.push_back(masked ? 0.0f
                                                   : row[t * e + c]);
                            targets.push_back(masked ? row[t * e + c]
                                                     : nan);
                        }
                    }
                }
            }

            Tensor x = Tensor::fromData({b, set.feature_dim},
                                        std::move(input));
            double batch_loss = 0.0;
            const StepOutcome outcome = supervisor.step([&] {
                adam.zeroGrad();
                Tensor h = net.backbone(x, pretext == Pretext::Gpt);
                Tensor pred = recon.forward(h);   // [B, L, E]
                pred = nn::reshape(pred, {b * l * e});
                Tensor loss = nn::mseLoss(pred, targets);
                loss.backward();
                batch_loss = loss.value()[0];
                return batch_loss;
            });
            if (outcome == StepOutcome::Stop)
                break;
            if (outcome == StepOutcome::Ok) {
                total += batch_loss;
                ++batches;
            }
        }
        epoch_loss = batches > 0 ? total / static_cast<double>(batches)
                                 : 0.0;
        if (options.verbose)
            inform("pretrain epoch ", epoch, " loss ", epoch_loss);
        supervisor.endEpoch(epoch);
    }
    return epoch_loss;
}

} // namespace

double
gptPretrain(TlpNet &net, const data::LabeledSet &set,
            const PretrainOptions &options)
{
    return pretrain(net, set, options, Pretext::Gpt);
}

double
bertPretrain(TlpNet &net, const data::LabeledSet &set,
             const PretrainOptions &options)
{
    return pretrain(net, set, options, Pretext::Bert);
}

} // namespace tlp::model
