/**
 * @file
 * Training-run supervisor: numeric-anomaly detection, rollback-retry,
 * and budget watchdogs for every gradient-descent loop.
 *
 * TLP's value rests on one expensive offline pretraining run (paper
 * Sec. 6.1) and a long model-guided search; a single NaN gradient or
 * diverging loss aborts or silently poisons hours of work. The
 * supervisor wraps each optimizer step with health checks — NaN/Inf
 * loss, NaN/Inf or exploding gradient global norm, loss divergence
 * against an EWMA — and recovers by rolling the parameters and
 * optimizer state back to the last-good in-memory snapshot, backing the
 * learning rate off (seeded, deterministic), and retrying a bounded
 * number of times. Wall-clock and step budgets stop runaway runs with
 * the last-good weights intact, and epoch-level training checkpoints in
 * the DESIGN.md Sec. 8 checksummed format ("TLPT") survive crashes.
 * Every health event lands in a typed counter (HealthCounters).
 *
 * A deterministic TrainFaultProfile (mirroring hw::FaultProfile)
 * injects NaN gradients and loss spikes keyed by (step, attempt, seed)
 * — never by wall clock — so every recovery path is testable and
 * benchable bit-for-bit.
 *
 * With supervision disabled (the default) or enabled but healthy, the
 * checks are read-only: the trained weights are bit-identical to an
 * unsupervised run (tests/test_supervisor.cc pins this down).
 */
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <string>

#include "nn/optim.h"
#include "support/result.h"
#include "support/rng.h"
#include "support/serialize.h"

namespace tlp::model {

/** Typed health events recorded by the training & search supervisors. */
enum class HealthEvent : uint8_t
{
    NanLoss = 0,        ///< loss came back NaN/Inf
    NanGrad,            ///< a gradient is NaN/Inf
    GradExplosion,      ///< gradient global norm above the hard limit
    LossDivergence,     ///< loss far above its EWMA trend
    Rollback,           ///< parameters restored from the last-good snapshot
    RetryExhausted,     ///< a batch was skipped after bounded retries
    AbortPolicy,        ///< AbortOnFault policy stopped the run
    WallClockBudget,    ///< wall-clock watchdog stopped the run
    StepBudget,         ///< step-count watchdog stopped the run
    NanScore,           ///< cost model produced NaN/Inf scores
    ConstantScore,      ///< cost model output collapsed to a constant
    LowRankCorrelation, ///< model-vs-measured rank correlation below floor
    Failover,           ///< search switched to the next fallback model
    CheckpointWritten,  ///< a training checkpoint reached disk
    NumEvents
};

/** Number of distinct health events. */
inline constexpr int kNumHealthEvents =
    static_cast<int>(HealthEvent::NumEvents);

/** Short event name, e.g. "nan_grad". */
std::string healthEventName(HealthEvent event);

/** Typed per-event counters; the unit all health telemetry flows into. */
struct HealthCounters
{
    std::array<int64_t, kNumHealthEvents> counts{};

    int64_t &operator[](HealthEvent event)
    {
        return counts[static_cast<size_t>(event)];
    }
    int64_t operator[](HealthEvent event) const
    {
        return counts[static_cast<size_t>(event)];
    }

    /** Sum of all counters. */
    int64_t total() const;

    /** "nan_grad=3 rollback=3" (only non-zero counters; "none" if all 0). */
    std::string toString() const;

    void serialize(BinaryWriter &writer) const;
    static HealthCounters deserialize(BinaryReader &reader);

    bool operator==(const HealthCounters &other) const
    {
        return counts == other.counts;
    }
};

/**
 * Deterministic training-fault injection (mirrors hw::FaultProfile).
 *
 * Each probability is the per-step-attempt chance of that fault. Draws
 * are pure functions of hash(step, attempt, seed) — never of wall clock
 * or call order — so faulty runs replay bit-identically and retries
 * (fresh attempt index) can succeed.
 */
struct TrainFaultProfile
{
    /** Chance a step attempt's gradients are scribbled with NaN. */
    double nan_grad_prob = 0.0;
    /** Chance a step attempt's observed loss is inflated 1e4x. */
    double loss_spike_prob = 0.0;
    /** Search side: cost-model scores collapse after this many online
     *  updates (0 = never). Consumed by FaultInjectedCostModel. */
    int collapse_after_updates = 0;
    /** Seed of the fault draws. */
    uint64_t seed = 0x7fa1;

    /** True when any fault has a non-zero probability/threshold. */
    bool enabled() const;

    /** Split @p total_rate evenly over nan-grad and loss-spike. */
    static TrainFaultProfile uniform(double total_rate,
                                     uint64_t seed = 0x7fa1);

    /** Mix the profile parameters into a config digest. */
    uint64_t digest() const;

    /** Deterministic Bernoulli draw for (step, attempt, stream). */
    bool draw(int64_t step, int attempt, uint64_t stream,
              double prob) const;
};

/** What the supervisor does when a step attempt is unhealthy. */
enum class RecoveryPolicy : uint8_t
{
    RollbackRetry = 0, ///< roll back, back off lr, retry (bounded)
    AbortOnFault,      ///< roll back and stop the run at the first fault
};

/** Supervisor parameters. */
struct SupervisorOptions
{
    /** Master switch; false = the supervisor is never consulted and the
     *  training loop behaves exactly as before. */
    bool enabled = false;

    RecoveryPolicy policy = RecoveryPolicy::RollbackRetry;

    /** Retry attempts per step before the batch is skipped. */
    int max_retries = 3;
    /** Learning-rate backoff factor applied on each rollback-retry. */
    double lr_backoff = 0.5;
    /** Seed of the deterministic backoff jitter. */
    uint64_t seed = 0x5afe;

    /** Hard gradient global-norm limit (NaN/Inf always unhealthy).
     *  Generous on purpose: OptimConfig::grad_clip handles the routine
     *  clipping; this catches true explosions. */
    double grad_norm_limit = 1e6;
    /** Loss EWMA smoothing factor. */
    double loss_ewma_alpha = 0.1;
    /** A loss above divergence_factor x EWMA (+ floor) is divergent. */
    double loss_divergence_factor = 10.0;
    /** Absolute slack added to the divergence threshold so tiny early
     *  losses don't trip it. */
    double loss_divergence_floor = 1.0;

    /** Wall-clock budget in seconds (0 = unlimited). Real time, so only
     *  the stop decision is nondeterministic — the weights returned are
     *  always a prefix of the unsupervised trajectory. */
    double max_wall_seconds = 0.0;
    /** Step budget across the whole run (0 = unlimited). */
    int64_t max_steps = 0;

    /** Epoch-level training checkpoint path ("" disables). */
    std::string checkpoint_path;
    /** Epochs between checkpoint writes. */
    int checkpoint_every = 1;

    /** Fault injection (off by default). */
    TrainFaultProfile faults;

    /** Where health counters accumulate (optional, caller-owned). */
    HealthCounters *health_out = nullptr;
};

/** Outcome of one supervised optimizer step. */
enum class StepOutcome : uint8_t
{
    Ok = 0,     ///< step applied (possibly after retries)
    Skipped,    ///< retries exhausted; batch skipped, weights last-good
    Stop,       ///< budget or abort policy: stop training now
};

// --- training checkpoints ("TLPT") --------------------------------------

/** Training-checkpoint file magic ("TLPT": TLP training state). */
inline constexpr uint32_t kTrainCheckpointMagic = 0x544c5054;

/** Current training-checkpoint format version. */
inline constexpr uint32_t kTrainCheckpointVersion = 1;

/** Everything an epoch-level training checkpoint persists. */
struct TrainCheckpoint
{
    int32_t epoch = 0;
    int64_t steps_done = 0;
    double loss_ewma = 0.0;
    bool ewma_ready = false;
    HealthCounters health;
    /** Parameter tensors, flattened, in parameters() order. */
    std::vector<std::vector<float>> params;
    /** Serialized Adam state (moments + step count + lr). */
    std::string optimizer_state;
};

/** Stream variant of the checkpoint writer (for tests/fuzzing). */
void writeTrainCheckpoint(std::ostream &os, const TrainCheckpoint &ckpt);

/**
 * Load a training checkpoint. Corruption, truncation, and version skew
 * come back as a clean Status (the DESIGN.md Sec. 8 contract).
 */
Result<TrainCheckpoint> loadTrainCheckpoint(std::istream &is);
Result<TrainCheckpoint> loadTrainCheckpoint(const std::string &path);

/** Parse + integrity-check a training checkpoint without applying it. */
Status verifyTrainCheckpoint(std::istream &is);

/**
 * The per-step supervisor. One instance wraps one training run: it owns
 * the last-good snapshot of (parameters, optimizer state) and decides,
 * for every step attempt, whether to apply, retry, skip, or stop.
 *
 * Usage (see trainTlpNet):
 *   TrainSupervisor supervisor(params, adam, options);
 *   for each batch:
 *       switch (supervisor.step([&] { zeroGrad; forward; backward;
 *                                     return loss; })) ...
 *   supervisor.endEpoch(epoch);   // EWMA checkpointing
 */
class TrainSupervisor
{
  public:
    /**
     * @p params must be the exact tensor list @p adam was built from.
     * With options.enabled == false every step() call simply runs the
     * attempt and adam.step() — zero behavioral change.
     */
    TrainSupervisor(std::vector<nn::Tensor> params, nn::Adam &adam,
                    SupervisorOptions options = {});

    /**
     * Run one supervised optimizer step. @p attempt must zero the
     * gradients, run forward + backward, and return the loss value; it
     * may be called up to 1 + max_retries times. On Ok the optimizer
     * stepped; on Skipped/Stop the parameters are the last-good ones.
     */
    StepOutcome step(const std::function<double()> &attempt);

    /**
     * Mark an epoch boundary: writes the epoch-level checkpoint when
     * configured (atomic, Sec. 8 framing; a failed write warns and
     * continues — the in-memory run is unaffected).
     */
    void endEpoch(int epoch);

    /** Loss of the last successful step attempt (NaN before any). */
    double lastLoss() const { return last_loss_; }

    /** Health counters accumulated so far. */
    const HealthCounters &health() const { return health_; }

    /** Steps applied (== optimizer steps) so far. */
    int64_t stepsDone() const { return steps_done_; }

    /** True once a budget watchdog or the abort policy fired. */
    bool stopped() const { return stopped_; }

    /** Build the checkpoint payload of the current state (for tests). */
    TrainCheckpoint makeCheckpoint(int epoch) const;

  private:
    /** Copy parameter values + optimizer state into the snapshot. */
    void takeSnapshot();

    /** Restore parameters + optimizer state from the snapshot. */
    void rollback();

    /** True when any gradient is non-finite; also yields the norm. */
    bool gradsUnhealthy(double *norm_out) const;

    /** Mirror the counters into options_.health_out (when set). */
    void publishHealth();

    std::vector<nn::Tensor> params_;
    nn::Adam &adam_;
    SupervisorOptions options_;
    Rng backoff_rng_;
    HealthCounters health_;

    std::vector<std::vector<float>> snapshot_params_;
    std::string snapshot_optimizer_;

    double loss_ewma_ = 0.0;
    bool ewma_ready_ = false;
    double last_loss_ = std::numeric_limits<double>::quiet_NaN();
    int64_t steps_done_ = 0;        ///< applied optimizer steps
    int64_t step_serial_ = 0;       ///< attempted steps (fault-draw key)
    bool stopped_ = false;
    double start_seconds_ = 0.0;    ///< wall clock at construction
};

} // namespace tlp::model
