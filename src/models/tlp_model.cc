#include "models/tlp_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/logging.h"

namespace tlp::model {

using nn::Tensor;

TlpNet::TlpNet(TlpNetConfig config, Rng &rng)
    : config_(config),
      up1_(config.emb_size, config.hidden, rng),
      up2_(config.hidden, config.hidden, rng)
{
    if (config_.lstm_backbone) {
        lstm_ = std::make_unique<nn::Lstm>(config_.hidden, config_.hidden,
                                           rng);
    } else {
        attention_ = std::make_unique<nn::MultiHeadSelfAttention>(
            config_.hidden, config_.heads, rng);
    }
    for (int i = 0; i < config_.residual_blocks; ++i)
        residuals_.push_back(
            std::make_unique<nn::ResidualBlock>(config_.hidden, rng));
    TLP_CHECK(config_.num_tasks >= 1, "need at least one task head");
    for (int t = 0; t < config_.num_tasks; ++t) {
        Head head;
        head.fc1 = std::make_unique<nn::Linear>(config_.hidden,
                                                config_.head_hidden, rng);
        head.fc2 = std::make_unique<nn::Linear>(config_.head_hidden, 1,
                                                rng);
        heads_.push_back(std::move(head));
    }
}

Tensor
TlpNet::backbone(const Tensor &x, bool causal)
{
    const int n = x.dim(0);
    TLP_CHECK(x.shape().size() == 2 &&
                  x.dim(1) == config_.seq_len * config_.emb_size,
              "bad TLP feature width");
    Tensor h = nn::reshape(x, {n, config_.seq_len, config_.emb_size});
    h = nn::relu(up1_.forward(h));
    h = nn::relu(up2_.forward(h));
    if (config_.lstm_backbone) {
        h = lstm_->forward(h);
    } else {
        h = attention_->forward(h, causal);
    }
    for (auto &block : residuals_)
        h = block->forward(h);
    return h;   // [N, L, hidden]
}

Tensor
TlpNet::forwardTask(const Tensor &x, int task)
{
    TLP_CHECK(task >= 0 && task < config_.num_tasks, "bad task ", task);
    const int n = x.dim(0);
    Tensor h = backbone(x);
    Head &head = heads_[static_cast<size_t>(task)];
    Tensor scores = nn::relu(head.fc1->forward(h));
    scores = head.fc2->forward(scores);                  // [N, L, 1]
    scores = nn::reshape(scores, {n, config_.seq_len});
    return nn::sumAxis1(scores);                         // [N]
}

std::vector<Tensor>
TlpNet::parameters()
{
    auto params = backboneParameters();
    for (int t = 0; t < config_.num_tasks; ++t)
        for (Tensor &param : headParameters(t))
            params.push_back(param);
    return params;
}

std::vector<Tensor>
TlpNet::backboneParameters()
{
    std::vector<Tensor> params;
    auto absorb = [&](nn::Module &module) {
        for (Tensor &param : module.parameters())
            params.push_back(param);
    };
    absorb(up1_);
    absorb(up2_);
    if (lstm_)
        absorb(*lstm_);
    if (attention_)
        absorb(*attention_);
    for (auto &block : residuals_)
        absorb(*block);
    return params;
}

std::vector<Tensor>
TlpNet::headParameters(int task)
{
    TLP_CHECK(task >= 0 && task < config_.num_tasks, "bad task ", task);
    std::vector<Tensor> params;
    Head &head = heads_[static_cast<size_t>(task)];
    for (Tensor &param : head.fc1->parameters())
        params.push_back(param);
    for (Tensor &param : head.fc2->parameters())
        params.push_back(param);
    return params;
}

namespace {

/**
 * Group-aware batch order: group chunks (so the rank loss sees dense
 * in-group pairs) packed several-to-a-batch up to batch_size.
 */
std::vector<std::vector<int>>
makeBatches(const data::LabeledSet &set, int batch_size, Rng &rng)
{
    std::map<int, std::vector<int>> by_group;
    for (int r = 0; r < set.rows; ++r)
        by_group[set.groups[static_cast<size_t>(r)]].push_back(r);

    // Chunk each group, then pack chunks into batches.
    const size_t chunk_size = std::max<size_t>(
        8, static_cast<size_t>(batch_size) / 4);
    std::vector<std::vector<int>> chunks;
    for (auto &[group, rows] : by_group) {
        rng.shuffle(rows);
        for (size_t start = 0; start < rows.size(); start += chunk_size) {
            const size_t end =
                std::min(rows.size(), start + chunk_size);
            chunks.emplace_back(rows.begin() + static_cast<long>(start),
                                rows.begin() + static_cast<long>(end));
        }
    }
    rng.shuffle(chunks);

    std::vector<std::vector<int>> batches;
    for (auto &chunk : chunks) {
        if (batches.empty() ||
            batches.back().size() + chunk.size() >
                static_cast<size_t>(batch_size)) {
            batches.emplace_back();
        }
        auto &batch = batches.back();
        batch.insert(batch.end(), chunk.begin(), chunk.end());
    }
    return batches;
}

/** Gather a feature batch into a Tensor [B, dim]. */
Tensor
gatherFeatures(const data::LabeledSet &set, const std::vector<int> &rows)
{
    std::vector<float> data;
    data.reserve(rows.size() * static_cast<size_t>(set.feature_dim));
    for (int r : rows) {
        const float *src = set.row(r);
        data.insert(data.end(), src, src + set.feature_dim);
    }
    return Tensor::fromData({static_cast<int>(rows.size()),
                             set.feature_dim},
                            std::move(data));
}

} // namespace

double
trainTlpNet(TlpNet &net, const data::LabeledSet &set,
            const TrainOptions &options)
{
    TLP_CHECK(set.num_tasks == net.config().num_tasks,
              "label columns (", set.num_tasks, ") != net tasks (",
              net.config().num_tasks, ")");
    Rng rng(options.seed);
    nn::AdamOptions adam_options;
    adam_options.lr = options.lr;
    adam_options.weight_decay = options.weight_decay;
    nn::Adam adam(net.parameters(), adam_options);
    TrainSupervisor supervisor(net.parameters(), adam, options.supervisor);

    double epoch_loss = 0.0;
    for (int epoch = 0; epoch < options.epochs && !supervisor.stopped();
         ++epoch) {
        const auto batches = makeBatches(set, options.batch_size, rng);
        double total = 0.0;
        int64_t count = 0;
        for (const auto &rows : batches) {
            // Per-task targets/groups up front, so empty batches are
            // skipped before the supervisor sees a step attempt.
            std::vector<int> active_tasks;
            std::vector<std::vector<float>> task_targets(
                static_cast<size_t>(set.num_tasks));
            std::vector<int> groups;
            groups.reserve(rows.size());
            for (int r : rows)
                groups.push_back(set.groups[static_cast<size_t>(r)]);
            for (int task = 0; task < set.num_tasks; ++task) {
                auto &targets = task_targets[static_cast<size_t>(task)];
                targets.reserve(rows.size());
                for (int r : rows) {
                    targets.push_back(
                        set.labels[static_cast<size_t>(r) *
                                       static_cast<size_t>(set.num_tasks) +
                                   static_cast<size_t>(task)]);
                }
                bool any_label = false;
                for (float t : targets)
                    any_label |= !std::isnan(t);
                if (any_label)
                    active_tasks.push_back(task);
                // else: this head sees nothing in this batch
            }
            if (active_tasks.empty())
                continue;

            Tensor x = gatherFeatures(set, rows);
            double batch_loss = 0.0;
            const StepOutcome outcome = supervisor.step([&] {
                adam.zeroGrad();
                Tensor loss;
                for (int task : active_tasks) {
                    Tensor pred = net.forwardTask(x, task);
                    const auto &targets =
                        task_targets[static_cast<size_t>(task)];
                    Tensor task_loss =
                        options.use_rank_loss
                            ? nn::rankLoss(pred, targets, groups)
                            : nn::mseLoss(pred, targets);
                    loss = loss.defined() ? nn::add(loss, task_loss)
                                          : task_loss;
                }
                loss.backward();
                batch_loss = loss.value()[0];
                return batch_loss;
            });
            if (outcome == StepOutcome::Stop)
                break;
            if (outcome == StepOutcome::Ok) {
                total += batch_loss;
                ++count;
            }
        }
        epoch_loss = count > 0 ? total / static_cast<double>(count) : 0.0;
        if (options.verbose) {
            inform("epoch ", epoch, " loss ", epoch_loss, " lr ",
                   adam.lr());
        }
        adam.setLr(adam.lr() * options.lr_decay);
        supervisor.endEpoch(epoch);
    }
    return epoch_loss;
}

std::vector<double>
predictTlpNet(TlpNet &net, const data::LabeledSet &set, int task,
              int batch_size)
{
    std::vector<double> scores;
    scores.reserve(static_cast<size_t>(set.rows));
    for (int start = 0; start < set.rows; start += batch_size) {
        const int end = std::min(set.rows, start + batch_size);
        std::vector<int> rows;
        for (int r = start; r < end; ++r)
            rows.push_back(r);
        Tensor x = gatherFeatures(set, rows);
        Tensor pred = net.forwardTask(x, task);
        for (float v : pred.value())
            scores.push_back(v);
    }
    return scores;
}

} // namespace tlp::model
