/**
 * @file
 * Self-supervised pretraining baselines (paper Table 8).
 *
 * The paper compares MTL against GPT-style and BERT-style pretraining of
 * the cost model on unlabeled schedule sequences, finding both inferior
 * for this small-input regime. We reproduce the two pretext tasks on the
 * TLP backbone:
 *   - GPT-style:  causal next-primitive-embedding prediction;
 *   - BERT-style: masked-primitive reconstruction.
 * The label columns of the input set are ignored — only features are
 * used. After pretraining, fine-tune with trainTlpNet as usual.
 */
#pragma once

#include "models/tlp_model.h"

namespace tlp::model {

/** Pretraining options. */
struct PretrainOptions
{
    int epochs = 3;
    int batch_size = 128;
    double lr = 1e-3;
    double mask_prob = 0.15;   ///< BERT row-masking probability
    uint64_t seed = 0x9e7;
    bool verbose = false;
    /** Training-run supervision (disabled by default). */
    SupervisorOptions supervisor;
};

/** GPT-style causal pretraining of @p net's backbone. @return loss. */
double gptPretrain(TlpNet &net, const data::LabeledSet &set,
                   const PretrainOptions &options);

/** BERT-style masked pretraining of @p net's backbone. @return loss. */
double bertPretrain(TlpNet &net, const data::LabeledSet &set,
                    const PretrainOptions &options);

} // namespace tlp::model
