/**
 * @file
 * The search-facing cost-model interface and its implementations.
 *
 * The auto-tuner (src/tuner) scores thousands of candidate schedules per
 * round through this interface and feeds back measured latencies:
 *
 *   - TlpCostModel:      pretrained TLP / MTL-TLP net; features come
 *                        straight from the primitive sequence (no
 *                        lowering — the Fig. 10 speed advantage).
 *   - TensetMlpCostModel: pretrained MLP over Ansor features; must lower
 *                        every candidate before scoring.
 *   - AnsorOnlineCostModel: the Ansor baseline; a GBDT retrained online
 *                        on the records measured so far.
 *   - RandomCostModel:   uniform scores (sanity floor).
 */
#pragma once

#include <memory>
#include <string>

#include "features/tlp_features.h"
#include "models/feature_cache.h"
#include "models/fused_infer.h"
#include "models/gbdt.h"
#include "models/tenset_mlp.h"
#include "models/tlp_model.h"
#include "schedule/state.h"

namespace tlp::model {

/**
 * Inference hot-path configuration of TlpCostModel (DESIGN.md §13).
 * Both accelerators are value-neutral: any combination of flags
 * predicts bit-identically; they only change speed. Defaults come from
 * the environment so every entry point (tuner, service, benches) picks
 * them up uniformly.
 */
struct TlpInferOptions
{
    /** Use the packed fused forward (FusedTlpInference) instead of the
     *  interpreted autograd forward. Ignored for LSTM backbones. */
    bool fused = true;
    /** Feature/score cache entries; 0 disables the cache entirely. */
    int64_t cache_capacity = 4096;

    /** TLP_FUSED_INFER (0 disables) and TLP_FEATURE_CACHE (entry
     *  count; 0 disables) override the defaults above. */
    static TlpInferOptions fromEnv();

    /** Both accelerators off — the pre-§13 interpreted path. */
    static TlpInferOptions
    legacy()
    {
        return {false, 0};
    }
};

/** Abstract cost model used by the search loop. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Display name, e.g. "tlp". */
    virtual std::string name() const = 0;

    /** Score candidates of task @p task_id; higher = predicted faster. */
    virtual std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states) = 0;

    /**
     * Batched scoring path for the evolutionary search: feature
     * extraction (and lowering, where required) runs in parallel over
     * candidates on the global ThreadPool, and the whole population is
     * scored in as few network forwards as possible. The default
     * delegates to scoreStates; results are identical either way.
     */
    virtual std::vector<double>
    predictBatch(int task_id, const std::vector<sched::State> &states)
    {
        return scoreStates(task_id, states);
    }

    /** Feed back measured latencies (online models retrain). */
    virtual void update(int task_id,
                        const std::vector<const sched::State *> &states,
                        const std::vector<double> &latency_ms)
    {
    }

    /** True when scoring requires lowering the candidate programs. */
    virtual bool needsLowering() const = 0;

    /**
     * Persist / restore the model's search-time mutable state (rng
     * cursors, health probes, fallback position) for tuning-checkpoint
     * resume. Most models are pure functions of their construction plus
     * the replayed update() history, so the default writes nothing;
     * models with state that replay cannot rebuild (RandomCostModel,
     * GuardedCostModel) override both.
     */
    virtual void serializeState(BinaryWriter &writer) const {}
    virtual void deserializeState(BinaryReader &reader) {}
};

/** TLP / MTL-TLP cost model (offline-pretrained). */
class TlpCostModel : public CostModel
{
  public:
    TlpCostModel(std::shared_ptr<TlpNet> net,
                 feat::TlpFeatureOptions feature_options = {},
                 int head_task = 0,
                 TlpInferOptions infer_options = TlpInferOptions::fromEnv());

    std::string name() const override { return "tlp"; }
    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    std::vector<double>
    predictBatch(int task_id, const std::vector<sched::State> &states)
        override;
    bool needsLowering() const override { return false; }

    /** Cache accounting (zeros when the cache is disabled). */
    FeatureCache::Stats cacheStats() const;

  private:
    /** Content fingerprint of every net parameter: stale-score guard. */
    uint64_t paramsFingerprint() const;

    std::vector<double>
    interpretedForward(const std::vector<float> &features, int rows);

    std::shared_ptr<TlpNet> net_;
    feat::TlpFeatureOptions feature_options_;
    int head_task_;
    TlpInferOptions infer_options_;
    /** The net's parameter handles, gathered once: Tensors share their
     *  node, so value() always reads the live weights, and the per-call
     *  fingerprint walk stays allocation-free. */
    std::vector<nn::Tensor> params_;
    std::unique_ptr<FusedTlpInference> fused_;
    std::unique_ptr<FeatureCache> cache_;
    uint64_t packed_epoch_ = 0;   ///< fingerprint fused_ was packed at
    // Reused per-call scratch (capacity is retained across calls, so
    // the steady state never reallocates).
    std::vector<SeqKey> keys_;
    std::vector<float> batch_;
    std::vector<int64_t> pending_state_;
    std::vector<int64_t> pending_slot_;
    std::vector<uint8_t> pending_fresh_;
    std::vector<uint8_t> claimed_;   ///< cache slots this batch reads
    std::vector<double> forward_scores_;
};

/** TenSet MLP cost model (offline-pretrained, Ansor features). */
class TensetMlpCostModel : public CostModel
{
  public:
    explicit TensetMlpCostModel(std::shared_ptr<TensetMlpNet> net);

    std::string name() const override { return "tenset-mlp"; }
    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    std::vector<double>
    predictBatch(int task_id, const std::vector<sched::State> &states)
        override;
    bool needsLowering() const override { return true; }

  private:
    std::shared_ptr<TensetMlpNet> net_;
};

/** Ansor's online GBDT over Ansor features. */
class AnsorOnlineCostModel : public CostModel
{
  public:
    explicit AnsorOnlineCostModel(GbdtOptions options = {});

    std::string name() const override { return "ansor-online"; }
    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    void update(int task_id,
                const std::vector<const sched::State *> &states,
                const std::vector<double> &latency_ms) override;
    bool needsLowering() const override { return true; }

    /** Refits rejected by the numeric guard (NaN predictions). */
    int64_t refitRejections() const { return refit_rejections_; }

  private:
    GbdtOptions options_;
    Gbdt gbdt_;
    std::vector<float> features_;               ///< rows x 164
    std::vector<float> latencies_;
    std::vector<int> tasks_;
    std::map<int, float> task_min_;
    int rows_ = 0;
    int64_t refit_rejections_ = 0;
};

/** Uniform-random scores. */
class RandomCostModel : public CostModel
{
  public:
    explicit RandomCostModel(uint64_t seed = 0xabcd);

    std::string name() const override { return "random"; }
    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    bool needsLowering() const override { return false; }
    void serializeState(BinaryWriter &writer) const override;
    void deserializeState(BinaryReader &reader) override;

  private:
    Rng rng_;
};

} // namespace tlp::model
