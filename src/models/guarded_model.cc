#include "models/guarded_model.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/stats.h"

namespace tlp::model {

// --- GuardedCostModel ---------------------------------------------------

GuardedCostModel::GuardedCostModel(
    std::vector<std::shared_ptr<CostModel>> ladder, GuardOptions options)
    : ladder_(std::move(ladder)), options_(options)
{
    TLP_CHECK(!ladder_.empty(), "guarded ladder must be non-empty");
    for (const auto &model : ladder_)
        TLP_CHECK(model != nullptr, "null rung in guarded ladder");
    if (options_.health_out != nullptr)
        health_ = *options_.health_out;
}

std::string
GuardedCostModel::name() const
{
    std::string out = "guarded:";
    for (size_t i = 0; i < ladder_.size(); ++i) {
        if (i > 0)
            out += '>';
        out += ladder_[i]->name();
    }
    return out;
}

std::string
GuardedCostModel::activeName() const
{
    return ladder_[static_cast<size_t>(active_)]->name();
}

bool
GuardedCostModel::needsLowering() const
{
    return ladder_[static_cast<size_t>(active_)]->needsLowering();
}

bool
GuardedCostModel::scoresUnhealthy(const std::vector<double> &scores,
                                  HealthEvent *event) const
{
    for (double s : scores) {
        if (!std::isfinite(s)) {
            *event = HealthEvent::NanScore;
            return true;
        }
    }
    // Constant-output collapse is only judged on a meaningful population
    // and only once measured feedback exists — online models legitimately
    // return uniform scores before their first fit.
    if (updates_seen_ > 0 &&
        scores.size() >=
            static_cast<size_t>(options_.min_probe_candidates)) {
        double lo = scores[0], hi = scores[0];
        for (double s : scores) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        if (hi - lo < options_.constant_eps) {
            *event = HealthEvent::ConstantScore;
            return true;
        }
    }
    return false;
}

void
GuardedCostModel::failover(HealthEvent cause)
{
    health_[cause]++;
    if (active_ + 1 >= static_cast<int>(ladder_.size()))
        return; // last rung: nothing left to fail over to
    ++active_;
    health_[HealthEvent::Failover]++;
    warn("cost model '", ladder_[static_cast<size_t>(active_ - 1)]->name(),
         "' quarantined (", healthEventName(cause), "); search continues "
         "with '", activeName(), "'");
    publishHealth();
}

std::vector<double>
GuardedCostModel::guardedScore(int task_id,
                               const std::vector<sched::State> &states,
                               bool batched)
{
    while (true) {
        CostModel &model = *ladder_[static_cast<size_t>(active_)];
        std::vector<double> scores =
            batched ? model.predictBatch(task_id, states)
                    : model.scoreStates(task_id, states);
        HealthEvent event = HealthEvent::NumEvents;
        const bool last_rung =
            active_ + 1 >= static_cast<int>(ladder_.size());
        if (last_rung || !scoresUnhealthy(scores, &event)) {
            publishHealth();
            return scores;
        }
        failover(event); // advances active_; re-score with the next rung
    }
}

std::vector<double>
GuardedCostModel::scoreStates(int task_id,
                              const std::vector<sched::State> &states)
{
    return guardedScore(task_id, states, /*batched=*/false);
}

std::vector<double>
GuardedCostModel::predictBatch(int task_id,
                               const std::vector<sched::State> &states)
{
    return guardedScore(task_id, states, /*batched=*/true);
}

void
GuardedCostModel::update(int task_id,
                         const std::vector<const sched::State *> &states,
                         const std::vector<double> &latency_ms)
{
    // Every rung learns from every measurement, so a later failover
    // lands on a model that is already warm.
    for (auto &model : ladder_)
        model->update(task_id, states, latency_ms);
    ++updates_seen_;

    // Maintain the probe window of recent healthy measurements.
    for (size_t i = 0; i < states.size(); ++i) {
        if (!std::isfinite(latency_ms[i]) || latency_ms[i] <= 0.0)
            continue;
        probe_states_.push_back(*states[i]);
        probe_latencies_.push_back(latency_ms[i]);
    }
    const size_t window = static_cast<size_t>(
        std::max(1, options_.probe_window));
    if (probe_states_.size() > window) {
        const size_t drop = probe_states_.size() - window;
        probe_states_.erase(probe_states_.begin(),
                            probe_states_.begin() +
                                static_cast<long>(drop));
        probe_latencies_.erase(probe_latencies_.begin(),
                               probe_latencies_.begin() +
                                   static_cast<long>(drop));
    }

    // Rank-correlation probe: does the active model still order the
    // measured states the way the hardware did?
    const bool last_rung =
        active_ + 1 >= static_cast<int>(ladder_.size());
    if (last_rung || options_.probe_every <= 0 ||
        updates_seen_ % options_.probe_every != 0 ||
        probe_states_.size() <
            static_cast<size_t>(options_.min_probe_candidates)) {
        publishHealth();
        return;
    }
    CostModel &model = *ladder_[static_cast<size_t>(active_)];
    const auto scores = model.scoreStates(task_id, probe_states_);
    HealthEvent event = HealthEvent::NumEvents;
    if (scoresUnhealthy(scores, &event)) {
        failover(event);
        publishHealth();
        return;
    }
    // Higher score must mean lower latency: correlate against -latency.
    std::vector<double> neg_latency(probe_latencies_.size());
    for (size_t i = 0; i < probe_latencies_.size(); ++i)
        neg_latency[i] = -probe_latencies_[i];
    const double corr = spearman(scores, neg_latency);
    if (std::isfinite(corr) && corr < options_.rank_corr_floor)
        failover(HealthEvent::LowRankCorrelation);
    publishHealth();
}

void
GuardedCostModel::publishHealth()
{
    if (options_.health_out != nullptr)
        *options_.health_out = health_;
}

void
GuardedCostModel::serializeState(BinaryWriter &writer) const
{
    writer.writePod<int32_t>(active_);
    writer.writePod<int64_t>(updates_seen_);
    health_.serialize(writer);
    // Member states as length-prefixed blobs: a rung whose state is pure
    // replay writes an empty blob, and the frame stays self-delimiting.
    writer.writePod<uint32_t>(static_cast<uint32_t>(ladder_.size()));
    for (const auto &model : ladder_) {
        std::ostringstream buffer(std::ios::binary);
        BinaryWriter blob(buffer);
        model->serializeState(blob);
        writer.writeString(buffer.str());
    }
    // The probe window itself is not serialized: the session resume
    // replays the measured history through update(), which rebuilds it.
}

void
GuardedCostModel::deserializeState(BinaryReader &reader)
{
    const auto active = reader.readPod<int32_t>();
    if (active < 0 || active >= static_cast<int32_t>(ladder_.size())) {
        throw SerializeError(ErrorCode::Invalid,
                             "checkpointed fallback position " +
                                 std::to_string(active) +
                                 " outside this ladder");
    }
    const auto updates = reader.readPod<int64_t>();
    HealthCounters health = HealthCounters::deserialize(reader);
    const auto count = reader.readPod<uint32_t>();
    if (count != ladder_.size()) {
        throw SerializeError(ErrorCode::Invalid,
                             "checkpoint holds " + std::to_string(count) +
                                 " ladder rungs, this session has " +
                                 std::to_string(ladder_.size()));
    }
    std::vector<std::string> blobs;
    blobs.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        blobs.push_back(reader.readString());
    // All validated: commit.
    active_ = active;
    updates_seen_ = updates;
    health_ = health;
    for (uint32_t i = 0; i < count; ++i) {
        if (blobs[i].empty())
            continue;
        std::istringstream buffer(blobs[i], std::ios::binary);
        BinaryReader blob(buffer);
        ladder_[i]->deserializeState(blob);
    }
    publishHealth();
}

// --- FaultInjectedCostModel ---------------------------------------------

FaultInjectedCostModel::FaultInjectedCostModel(
    std::shared_ptr<CostModel> inner, int collapse_after_updates)
    : inner_(std::move(inner)),
      collapse_after_updates_(collapse_after_updates)
{
    TLP_CHECK(inner_ != nullptr, "null inner model");
}

bool
FaultInjectedCostModel::collapsed() const
{
    return collapse_after_updates_ > 0 &&
           updates_seen_ >= collapse_after_updates_;
}

std::vector<double>
FaultInjectedCostModel::maybeCollapse(std::vector<double> scores)
{
    if (!collapsed())
        return scores;
    // Alternate the two sickness modes by update parity so both the NaN
    // probe and the constant-collapse probe get exercised.
    const bool nan_mode = updates_seen_ % 2 == 0;
    for (auto &score : scores) {
        score = nan_mode ? std::numeric_limits<double>::quiet_NaN()
                         : 0.5;
    }
    return scores;
}

std::vector<double>
FaultInjectedCostModel::scoreStates(int task_id,
                                    const std::vector<sched::State> &states)
{
    return maybeCollapse(inner_->scoreStates(task_id, states));
}

std::vector<double>
FaultInjectedCostModel::predictBatch(
    int task_id, const std::vector<sched::State> &states)
{
    return maybeCollapse(inner_->predictBatch(task_id, states));
}

void
FaultInjectedCostModel::update(
    int task_id, const std::vector<const sched::State *> &states,
    const std::vector<double> &latency_ms)
{
    inner_->update(task_id, states, latency_ms);
    ++updates_seen_;
}

void
FaultInjectedCostModel::serializeState(BinaryWriter &writer) const
{
    writer.writePod<int64_t>(updates_seen_);
    std::ostringstream buffer(std::ios::binary);
    BinaryWriter blob(buffer);
    inner_->serializeState(blob);
    writer.writeString(buffer.str());
}

void
FaultInjectedCostModel::deserializeState(BinaryReader &reader)
{
    updates_seen_ = reader.readPod<int64_t>();
    const std::string bytes = reader.readString();
    if (!bytes.empty()) {
        std::istringstream buffer(bytes, std::ios::binary);
        BinaryReader blob(buffer);
        inner_->deserializeState(blob);
    }
}

std::shared_ptr<GuardedCostModel>
makeGuardedLadder(std::shared_ptr<CostModel> preferred,
                  GuardOptions options)
{
    std::vector<std::shared_ptr<CostModel>> ladder;
    ladder.push_back(std::move(preferred));
    ladder.push_back(std::make_shared<AnsorOnlineCostModel>());
    ladder.push_back(std::make_shared<RandomCostModel>());
    return std::make_shared<GuardedCostModel>(std::move(ladder), options);
}

} // namespace tlp::model
