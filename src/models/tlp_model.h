/**
 * @file
 * The TLP / MTL-TLP network (paper Figs. 7 and 8) and its trainer.
 *
 * Architecture: linear layers up-sample the per-primitive embedding to
 * the hidden width, one self-attention (or LSTM) "backbone basic module"
 * captures contextual features, two residual blocks follow, and the head
 * (linear layers + a sum over sequence positions) produces the score.
 * The red-dashed-box part of Fig. 7 is the backbone; MTL-TLP attaches
 * one head per hardware platform (task) to a shared backbone, and tuples
 * missing a task's label simply skip that head's loss (Sec. 5.2).
 */
#pragma once

#include <memory>

#include "dataset/splits.h"
#include "models/supervisor.h"
#include "nn/losses.h"
#include "nn/modules.h"
#include "nn/optim.h"

namespace tlp::model {

/** Architecture hyper-parameters. */
struct TlpNetConfig
{
    int seq_len = 25;
    int emb_size = 22;
    int hidden = 64;            ///< paper uses 256; 64 is laptop scale
    int heads = 8;              ///< self-attention heads (Sec. 6.1.3)
    bool lstm_backbone = false; ///< LSTM instead of self-attention
    int residual_blocks = 2;    ///< Sec. 6.1.3: two residual blocks
    int head_hidden = 64;
    int num_tasks = 1;          ///< MTL-TLP: one head per platform
};

/** The TLP network (MTL-TLP when num_tasks > 1). */
class TlpNet : public nn::Module
{
  public:
    TlpNet(TlpNetConfig config, Rng &rng);

    const TlpNetConfig &config() const { return config_; }

    /** Backbone: x [N, seq_len*emb_size] -> hidden sequence [N, L, D]. */
    nn::Tensor backbone(const nn::Tensor &x, bool causal = false);

    /** Full forward for one task head: -> scores [N]. */
    nn::Tensor forwardTask(const nn::Tensor &x, int task = 0);

    std::vector<nn::Tensor> parameters() override;

    /** Parameters of the shared backbone only. */
    std::vector<nn::Tensor> backboneParameters();

    /** Parameters of one head. */
    std::vector<nn::Tensor> headParameters(int task);

  private:
    TlpNetConfig config_;
    nn::Linear up1_, up2_;
    std::unique_ptr<nn::MultiHeadSelfAttention> attention_;
    std::unique_ptr<nn::Lstm> lstm_;
    std::vector<std::unique_ptr<nn::ResidualBlock>> residuals_;
    struct Head
    {
        std::unique_ptr<nn::Linear> fc1, fc2;
    };
    std::vector<Head> heads_;
};

/** Training options shared by the learned models. */
struct TrainOptions
{
    int epochs = 6;
    int batch_size = 256;
    double lr = 2e-3;
    double lr_decay = 0.85;        ///< per epoch
    bool use_rank_loss = true;     ///< else MSE (paper Table 3)
    double weight_decay = 1e-6;
    uint64_t seed = 0x7ea1;
    bool verbose = false;
    /** Training-run supervision (disabled by default: with
     *  supervisor.enabled == false the loop is byte-for-byte the
     *  unsupervised one). */
    SupervisorOptions supervisor;
};

/**
 * Train @p net on @p set. The set's label columns map 1:1 to the net's
 * task heads; NaN labels are skipped per task. Batches are drawn within
 * subgraph groups so the rank loss sees dense comparable pairs.
 * @return final epoch's mean training loss.
 */
double trainTlpNet(TlpNet &net, const data::LabeledSet &set,
                   const TrainOptions &options);

/** Predict scores of @p set rows with head @p task. */
std::vector<double> predictTlpNet(TlpNet &net, const data::LabeledSet &set,
                                  int task = 0, int batch_size = 512);

} // namespace tlp::model
