#include "models/feature_cache.h"

#include "support/rng.h"

namespace tlp::model {

SeqKey
seqKeyOf(const sched::PrimitiveSeq &seq)
{
    // lo is exactly PrimitiveSeq::hash(); hi is an independent walk with
    // a different basis and per-token mixing, computed in the same pass.
    SeqKey key;
    key.lo = 1469598103934665603ull;
    key.hi = 0x9e3779b97f4a7c15ull;
    for (const sched::Primitive &prim : seq.prims) {
        const auto kind = static_cast<uint64_t>(prim.kind);
        key.lo = hashCombine(key.lo, kind);
        key.hi = hashCombine(key.hi, kind ^ 0x517cc1b727220a95ull);
        for (const sched::Param &param : prim.params) {
            if (std::holds_alternative<int64_t>(param)) {
                const auto v =
                    static_cast<uint64_t>(std::get<int64_t>(param));
                key.lo = hashCombine(key.lo, v);
                key.hi = hashCombine(key.hi, ~v);
            } else {
                const auto &name = std::get<std::string>(param);
                key.lo =
                    hashCombine(key.lo, fnv1a(name.data(), name.size()));
                key.hi = hashCombine(
                    key.hi, fnv1a(name.data(), name.size(),
                                  0xff51afd7ed558ccdull));
            }
        }
    }
    return key;
}

FeatureCache::FeatureCache(int64_t dim, int64_t capacity)
    : dim_(dim), capacity_(capacity)
{
    TLP_CHECK(dim_ > 0, "feature cache needs a positive row width");
    TLP_CHECK(capacity_ > 0, "feature cache needs a positive capacity");
    // All storage up front: the steady state must never allocate.
    uint64_t table_size = 64;
    while (table_size < static_cast<uint64_t>(capacity_) * 2)
        table_size *= 2;
    mask_ = table_size - 1;
    // Every find/insert/evict afterwards reuses this storage.
    // tlp-lint: allow(hot-alloc) -- one-time construction sizing.
    slab_.resize(static_cast<size_t>(capacity_ * dim_));
    // tlp-lint: allow(hot-alloc) -- one-time construction sizing.
    entries_.resize(static_cast<size_t>(capacity_));
    // tlp-lint: allow(hot-alloc) -- one-time construction sizing.
    table_.resize(static_cast<size_t>(table_size), 0);
}

int64_t
FeatureCache::probeFind(const SeqKey &key) const
{
    uint64_t idx = key.lo & mask_;
    while (true) {
        const int64_t cell = table_[static_cast<size_t>(idx)];
        if (cell == 0)
            return -1;
        if (cell > 0) {
            const Entry &entry =
                entries_[static_cast<size_t>(cell - 1)];
            if (entry.key == key)
                return cell - 1;
        }
        idx = (idx + 1) & mask_;
    }
}

void
FeatureCache::tableInsert(const SeqKey &key, int64_t slot)
{
    uint64_t idx = key.lo & mask_;
    while (true) {
        int64_t &cell = table_[static_cast<size_t>(idx)];
        if (cell == 0 || cell == -1) {
            if (cell == -1)
                --tombstones_;
            cell = slot + 1;
            return;
        }
        idx = (idx + 1) & mask_;
    }
}

void
FeatureCache::tableErase(const SeqKey &key)
{
    uint64_t idx = key.lo & mask_;
    while (true) {
        int64_t &cell = table_[static_cast<size_t>(idx)];
        TLP_CHECK(cell != 0, "erasing a key the cache never held");
        if (cell > 0 &&
            entries_[static_cast<size_t>(cell - 1)].key == key) {
            cell = -1;
            ++tombstones_;
            return;
        }
        idx = (idx + 1) & mask_;
    }
}

void
FeatureCache::rebuildTable()
{
    // In-place, allocation-free: clear and reinsert the live entries.
    std::fill(table_.begin(), table_.end(), int64_t{0});
    tombstones_ = 0;
    for (int64_t slot = 0; slot < size_; ++slot)
        tableInsert(entries_[static_cast<size_t>(slot)].key, slot);
}

int64_t
FeatureCache::find(const SeqKey &key) const
{
    return probeFind(key);
}

int64_t
FeatureCache::insert(const SeqKey &key)
{
    ++stats_.misses;
    int64_t slot;
    if (size_ < capacity_) {
        slot = size_++;
    } else {
        // Deterministic FIFO: slots were filled in insertion order and
        // next_evict_ cycles through them in that same order, so the
        // victim is always the oldest (re)inserted entry.
        slot = next_evict_;
        next_evict_ = (next_evict_ + 1) % capacity_;
        tableErase(entries_[static_cast<size_t>(slot)].key);
        ++stats_.evictions;
        // Probe chains degrade as tombstones accumulate; rebuilding
        // in place keeps lookups O(1) without allocating.
        if (tombstones_ > static_cast<int64_t>(table_.size()) / 4)
            rebuildTable();
    }
    Entry &entry = entries_[static_cast<size_t>(slot)];
    entry.key = key;
    entry.score_task = -1;
    entry.score_epoch = 0;
    entry.score = 0.0;
    tableInsert(key, slot);
    return slot;
}

const float *
FeatureCache::rowAt(int64_t slot) const
{
    return slab_.data() + slot * dim_;
}

float *
FeatureCache::rowAt(int64_t slot)
{
    return slab_.data() + slot * dim_;
}

bool
FeatureCache::scoreAt(int64_t slot, int task, uint64_t epoch,
                      double *out) const
{
    const Entry &entry = entries_[static_cast<size_t>(slot)];
    if (entry.score_task != task || entry.score_epoch != epoch)
        return false;
    *out = entry.score;
    return true;
}

void
FeatureCache::storeScore(int64_t slot, int task, uint64_t epoch,
                         double score)
{
    Entry &entry = entries_[static_cast<size_t>(slot)];
    entry.score_task = task;
    entry.score_epoch = epoch;
    entry.score = score;
}

} // namespace tlp::model
