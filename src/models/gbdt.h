/**
 * @file
 * Gradient-boosted regression trees (the Ansor online model).
 *
 * Ansor's online cost model is an XGBoost regressor over its
 * hand-engineered features, retrained on the records measured so far in
 * the current tuning session. This is a from-scratch equivalent: squared
 * error boosting with exact greedy splits.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tlp::model {

/** Boosting hyper-parameters. */
struct GbdtOptions
{
    int trees = 30;
    int max_depth = 5;
    double learning_rate = 0.3;
    int min_samples_leaf = 4;
    double min_gain = 1e-7;
};

/** The boosted-tree ensemble. */
class Gbdt
{
  public:
    explicit Gbdt(GbdtOptions options = {});

    /** Fit to rows x dim features and targets (squared error). */
    void fit(const std::vector<float> &features, int rows, int dim,
             const std::vector<float> &targets);

    /** Predict one row. */
    double predictRow(const float *row) const;

    /** Predict all rows. */
    std::vector<double> predict(const std::vector<float> &features,
                                int rows, int dim) const;

    /** True after a successful fit. */
    bool fitted() const { return !trees_.empty(); }

  private:
    struct TreeNode
    {
        int feature = -1;         ///< -1 = leaf
        float threshold = 0.0f;
        float value = 0.0f;       ///< leaf prediction
        int left = -1, right = -1;
    };
    using Tree = std::vector<TreeNode>;

    int buildNode(Tree &tree, const std::vector<float> &features, int dim,
                  const std::vector<float> &residuals,
                  std::vector<int> &samples, int begin, int end,
                  int depth);

    GbdtOptions options_;
    double base_ = 0.0;
    std::vector<Tree> trees_;
    int dim_ = 0;
};

} // namespace tlp::model
