#include "models/tenset_mlp.h"

#include <cmath>
#include <map>

namespace tlp::model {

using nn::Tensor;

TensetMlpNet::TensetMlpNet(MlpConfig config, Rng &rng) : config_(config)
{
    int in = config_.input;
    for (int i = 0; i < config_.layers; ++i) {
        layers_.push_back(
            std::make_unique<nn::Linear>(in, config_.hidden, rng));
        in = config_.hidden;
    }
    layers_.push_back(std::make_unique<nn::Linear>(in, 1, rng));
}

Tensor
TensetMlpNet::forward(const Tensor &x)
{
    Tensor h = x;
    for (size_t i = 0; i + 1 < layers_.size(); ++i)
        h = nn::relu(layers_[i]->forward(h));
    h = layers_.back()->forward(h);                 // [N, 1]
    return nn::reshape(h, {x.dim(0)});
}

std::vector<Tensor>
TensetMlpNet::parameters()
{
    std::vector<Tensor> params;
    for (auto &layer : layers_)
        for (Tensor &param : layer->parameters())
            params.push_back(param);
    return params;
}

double
trainMlp(TensetMlpNet &net, const data::LabeledSet &set,
         const TrainOptions &options)
{
    TLP_CHECK(set.num_tasks == 1, "MLP baseline is single-task");
    TLP_CHECK(set.feature_dim == net.config().input,
              "feature width mismatch");
    Rng rng(options.seed);
    nn::AdamOptions adam_options;
    adam_options.lr = options.lr;
    adam_options.weight_decay = options.weight_decay;
    nn::Adam adam(net.parameters(), adam_options);
    TrainSupervisor supervisor(net.parameters(), adam, options.supervisor);

    // Group-aware batches (rank loss needs in-group pairs).
    std::map<int, std::vector<int>> by_group;
    for (int r = 0; r < set.rows; ++r)
        by_group[set.groups[static_cast<size_t>(r)]].push_back(r);

    double epoch_loss = 0.0;
    for (int epoch = 0; epoch < options.epochs && !supervisor.stopped();
         ++epoch) {
        std::vector<std::vector<int>> batches;
        for (auto &[group, rows] : by_group) {
            rng.shuffle(rows);
            for (size_t start = 0; start < rows.size();
                 start += static_cast<size_t>(options.batch_size)) {
                const size_t end =
                    std::min(rows.size(),
                             start + static_cast<size_t>(
                                         options.batch_size));
                batches.emplace_back(
                    rows.begin() + static_cast<long>(start),
                    rows.begin() + static_cast<long>(end));
            }
        }
        rng.shuffle(batches);

        double total = 0.0;
        int64_t count = 0;
        for (const auto &rows : batches) {
            std::vector<float> data;
            std::vector<float> targets;
            std::vector<int> groups;
            data.reserve(rows.size() *
                         static_cast<size_t>(set.feature_dim));
            for (int r : rows) {
                const float *src = set.row(r);
                data.insert(data.end(), src, src + set.feature_dim);
                targets.push_back(set.labels[static_cast<size_t>(r)]);
                groups.push_back(set.groups[static_cast<size_t>(r)]);
            }
            bool any_label = false;
            for (float t : targets)
                any_label |= !std::isnan(t);
            if (!any_label)
                continue;
            Tensor x = Tensor::fromData(
                {static_cast<int>(rows.size()), set.feature_dim},
                std::move(data));
            double batch_loss = 0.0;
            const StepOutcome outcome = supervisor.step([&] {
                adam.zeroGrad();
                Tensor pred = net.forward(x);
                Tensor loss = options.use_rank_loss
                                  ? nn::rankLoss(pred, targets, groups)
                                  : nn::mseLoss(pred, targets);
                loss.backward();
                batch_loss = loss.value()[0];
                return batch_loss;
            });
            if (outcome == StepOutcome::Stop)
                break;
            if (outcome == StepOutcome::Ok) {
                total += batch_loss;
                ++count;
            }
        }
        epoch_loss = count > 0 ? total / static_cast<double>(count) : 0.0;
        if (options.verbose)
            inform("mlp epoch ", epoch, " loss ", epoch_loss);
        adam.setLr(adam.lr() * options.lr_decay);
        supervisor.endEpoch(epoch);
    }
    return epoch_loss;
}

std::vector<double>
predictMlp(TensetMlpNet &net, const data::LabeledSet &set, int batch_size)
{
    std::vector<double> scores;
    scores.reserve(static_cast<size_t>(set.rows));
    for (int start = 0; start < set.rows; start += batch_size) {
        const int end = std::min(set.rows, start + batch_size);
        std::vector<float> data;
        for (int r = start; r < end; ++r) {
            const float *src = set.row(r);
            data.insert(data.end(), src, src + set.feature_dim);
        }
        Tensor x = Tensor::fromData({end - start, set.feature_dim},
                                    std::move(data));
        Tensor pred = net.forward(x);
        for (float v : pred.value())
            scores.push_back(v);
    }
    return scores;
}

} // namespace tlp::model
