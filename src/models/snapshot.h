/**
 * @file
 * Pretrained-model snapshots (TLP / MTL-TLP and the TenSet MLP).
 *
 * A snapshot holds the architecture config plus every parameter tensor,
 * wrapped in the standard CRC32-checksummed section framing, so a
 * pretraining run (the expensive artifact of Sec. 6.1/6.2) survives
 * process restarts and corrupt files are reported as a clean Status
 * instead of a crash. Loads return Result<T>; saves are atomic
 * (write-tmp-then-rename).
 */
#pragma once

#include <iosfwd>
#include <memory>

#include "models/tenset_mlp.h"
#include "models/tlp_model.h"
#include "support/result.h"

namespace tlp::model {

/** Snapshot file magic ("TLPW": TLP weights). */
inline constexpr uint32_t kSnapshotMagic = 0x544c5057;

/** Current snapshot format version (min supported == current). */
inline constexpr uint32_t kSnapshotVersion = 1;

/** Save @p net (config + parameters) atomically to @p path. */
Status saveTlpSnapshot(const std::string &path, TlpNet &net);

/** Stream variant, for embedding in larger files and tests. */
void saveTlpSnapshot(std::ostream &os, TlpNet &net);

/**
 * Load a TLP / MTL-TLP snapshot. Corruption, truncation, version skew,
 * and architecture mismatches come back as a Status.
 */
Result<std::shared_ptr<TlpNet>> loadTlpSnapshot(const std::string &path);
Result<std::shared_ptr<TlpNet>> loadTlpSnapshot(std::istream &is);

/**
 * Staleness/health probe for a freshly loaded TLP snapshot (DESIGN.md
 * §12): runs a fixed synthetic batch through head 0 and demands finite
 * scores with a non-degenerate spread. A snapshot whose parameters were
 * zeroed, NaN-poisoned, or truncated-but-CRC-lucky fails the probe, so a
 * service can reject a hot-swap before any session scores with it.
 */
Status probeSnapshotHealth(TlpNet &net);

/** Save the TenSet-MLP baseline the same way. */
Status saveMlpSnapshot(const std::string &path, TensetMlpNet &net);
void saveMlpSnapshot(std::ostream &os, TensetMlpNet &net);

Result<std::shared_ptr<TensetMlpNet>>
loadMlpSnapshot(const std::string &path);
Result<std::shared_ptr<TensetMlpNet>> loadMlpSnapshot(std::istream &is);

} // namespace tlp::model
