#include "models/fused_infer.h"

#include <cmath>
#include <cstring>

#include "nn/infer_ops.h"
#include "nn/kernels.h"
#include "support/thread_pool.h"

namespace tlp::model {

namespace nk = nn::kern;
namespace io = nn::iops;

FusedTlpInference::FusedTlpInference(std::shared_ptr<TlpNet> net)
    : net_(std::move(net))
{
    TLP_CHECK(net_ != nullptr, "null TLP net");
    config_ = net_->config();
    if (!usable())
        return;

    // Lay out the slab and wire the per-layer pointers once; repack()
    // only re-copies values (sizes are fixed by the architecture).
    params_ = net_->parameters();
    int64_t total = 0;
    for (nn::Tensor &param : params_)
        total += param.numel();
    // predict() never allocates from the heap.
    // tlp-lint: allow(hot-alloc) -- one-time weight-slab sizing.
    packed_.resize(static_cast<size_t>(total));

    size_t cursor = 0;
    auto take = [&](int64_t numel) {
        const float *ptr = packed_.data() + cursor;
        TLP_CHECK(cursor + static_cast<size_t>(numel) <= packed_.size(),
                  "packed-parameter overrun");
        cursor += static_cast<size_t>(numel);
        return ptr;
    };
    const int64_t h = config_.hidden;
    auto affine = [&](int64_t in, int64_t out) {
        Affine a;
        a.w = take(in * out);
        a.b = take(out);
        return a;
    };
    auto norm = [&] {
        Norm nrm;
        nrm.gamma = take(h);
        nrm.beta = take(h);
        return nrm;
    };
    // The packing order is TlpNet::parameters() order (the snapshot
    // order): up1, up2, attention (q, k, v, out, norm), residual
    // blocks, then one (fc1, fc2) pair per task head.
    up1_ = affine(config_.emb_size, h);
    up2_ = affine(h, h);
    q_ = affine(h, h);
    k_ = affine(h, h);
    v_ = affine(h, h);
    attn_out_ = affine(h, h);
    attn_norm_ = norm();
    for (int i = 0; i < config_.residual_blocks; ++i) {
        Residual res;
        res.fc1 = affine(h, h);
        res.fc2 = affine(h, h);
        res.norm = norm();
        // tlp-lint: allow(hot-alloc) -- construction-time layout.
        residuals_.push_back(res);
    }
    for (int t = 0; t < config_.num_tasks; ++t) {
        Head head;
        head.fc1 = affine(h, config_.head_hidden);
        head.fc2 = affine(config_.head_hidden, 1);
        // tlp-lint: allow(hot-alloc) -- construction-time layout.
        heads_.push_back(head);
    }
    TLP_CHECK(cursor == packed_.size(), "packed-parameter underrun");
    repack();
}

void
FusedTlpInference::repack()
{
    if (!usable())
        return;
    size_t cursor = 0;
    for (const nn::Tensor &param : params_) {
        const auto &value = param.value();
        TLP_CHECK(cursor + value.size() <= packed_.size(),
                  "net architecture changed under the packed weights");
        std::memcpy(packed_.data() + cursor, value.data(),
                    value.size() * sizeof(float));
        cursor += value.size();
    }
    TLP_CHECK(cursor == packed_.size(),
              "net architecture changed under the packed weights");
}

void
FusedTlpInference::predict(const float *features, int64_t rows, int task,
                           double *out)
{
    TLP_CHECK(usable(), "fused inference has no LSTM path");
    TLP_CHECK(task >= 0 && task < config_.num_tasks, "bad task ", task);
    if (rows == 0)
        return;
    const int64_t blocks =
        (rows + kRowsPerBlock - 1) / kRowsPerBlock;
    // One private arena per concurrently-running chunk. parallelFor
    // creates at most numThreads() chunks; which arena a chunk draws is
    // scheduling-dependent, but arenas are scratch-only so the values
    // written to `out` never depend on the assignment.
    const auto workers =
        static_cast<size_t>(ThreadPool::global().numThreads());
    while (arenas_.size() < workers) {
        // Warm-up growth after a thread-count change only.
        // tlp-lint: allow(hot-alloc) -- arena-pool warm-up growth.
        arenas_.push_back(std::make_unique<Arena>(size_t{2} << 20));
    }
    std::atomic<size_t> next_arena{0};
    const int64_t dim =
        static_cast<int64_t>(config_.seq_len) * config_.emb_size;
    ThreadPool::global().parallelFor(
        0, blocks, 1, [&](int64_t b0, int64_t b1) {
            Arena &arena =
                *arenas_[next_arena.fetch_add(1) % arenas_.size()];
            for (int64_t block = b0; block < b1; ++block) {
                const int64_t row0 = block * kRowsPerBlock;
                const int64_t n =
                    std::min(kRowsPerBlock, rows - row0);
                const Arena::Mark mark = arena.checkpoint();
                forwardBlock(arena, features + row0 * dim, n, task,
                             out + row0);
                arena.rewind(mark);
            }
        });
}

void
FusedTlpInference::forwardBlock(Arena &arena, const float *x, int64_t n,
                                int task, double *out)
{
    const int64_t S = config_.seq_len;
    const int64_t E = config_.emb_size;
    const int64_t H = config_.hidden;
    const int64_t heads = config_.heads;
    const int64_t hd = H / heads;
    const int64_t rows = n * S;   // the flattened [n*S, .] row count

    // Up-sampling: relu(up2(relu(up1(x)))). The interpreted Linear
    // flattens [n, S, E] to [n*S, E] before its matmul; x is already
    // that contiguous layout.
    float *h1 = arena.allocFloats(static_cast<size_t>(rows * H));
    nk::gemmRows(x, up1_.w, h1, 0, rows, E, H);
    io::addBiasReluRows(h1, up1_.b, h1, 0, rows, H);
    float *h2 = arena.allocFloats(static_cast<size_t>(rows * H));
    nk::gemmRows(h1, up2_.w, h2, 0, rows, H, H);
    io::addBiasReluRows(h2, up2_.b, h2, 0, rows, H);

    // Self-attention block. Projections first...
    float *qf = arena.allocFloats(static_cast<size_t>(rows * H));
    float *kf = arena.allocFloats(static_cast<size_t>(rows * H));
    float *vf = arena.allocFloats(static_cast<size_t>(rows * H));
    nk::gemmRows(h2, q_.w, qf, 0, rows, H, H);
    io::addBiasRows(qf, q_.b, qf, 0, rows, H);
    nk::gemmRows(h2, k_.w, kf, 0, rows, H, H);
    io::addBiasRows(kf, k_.b, kf, 0, rows, H);
    nk::gemmRows(h2, v_.w, vf, 0, rows, H, H);
    io::addBiasRows(vf, v_.b, vf, 0, rows, H);

    // ...then the head split [n, S, H] -> [n*heads, S, hd] (the
    // interpreted reshape/permute0213/reshape chain, as one copy)...
    const int64_t batches = n * heads;
    float *q_s = arena.allocFloats(static_cast<size_t>(rows * H));
    float *k_s = arena.allocFloats(static_cast<size_t>(rows * H));
    float *v_s = arena.allocFloats(static_cast<size_t>(rows * H));
    auto split = [&](const float *src, float *dst) {
        for (int64_t in = 0; in < n; ++in)
            for (int64_t ih = 0; ih < heads; ++ih)
                for (int64_t l = 0; l < S; ++l) {
                    const float *from = src + (in * S + l) * H + ih * hd;
                    float *to =
                        dst + ((in * heads + ih) * S + l) * hd;
                    std::memcpy(to, from,
                                static_cast<size_t>(hd) *
                                    sizeof(float));
                }
    };
    split(qf, q_s);
    split(kf, k_s);
    split(vf, v_s);

    // ...K^T per batch (interpreted transposeLast2 materializes it too,
    // so the gemm reads the identical operand layout)...
    float *k_t = arena.allocFloats(static_cast<size_t>(rows * H));
    for (int64_t s = 0; s < batches; ++s) {
        const float *src = k_s + s * S * hd;
        float *dst = k_t + s * S * hd;
        for (int64_t l = 0; l < S; ++l)
            for (int64_t d = 0; d < hd; ++d)
                dst[d * S + l] = src[l * hd + d];
    }

    // ...scores = softmax(q k^T / sqrt(hd)), context = probs v.
    float *scores =
        arena.allocFloats(static_cast<size_t>(batches * S * S));
    for (int64_t s = 0; s < batches; ++s)
        nk::gemmRows(q_s + s * S * hd, k_t + s * S * hd,
                     scores + s * S * S, 0, S, hd, S);
    io::scaleInPlace(scores, batches * S * S,
                     1.0f / std::sqrt(static_cast<float>(hd)));
    io::softmaxRows(scores, scores, 0, batches * S, S);
    float *ctx = arena.allocFloats(static_cast<size_t>(rows * H));
    for (int64_t s = 0; s < batches; ++s)
        nk::gemmRows(scores + s * S * S, v_s + s * S * hd,
                     ctx + s * S * hd, 0, S, S, hd);

    // Merge heads back to [n*S, H] (inverse of split), project, then
    // residual + layer norm against the attention input h2.
    float *merged = arena.allocFloats(static_cast<size_t>(rows * H));
    for (int64_t in = 0; in < n; ++in)
        for (int64_t ih = 0; ih < heads; ++ih)
            for (int64_t l = 0; l < S; ++l) {
                const float *from =
                    ctx + ((in * heads + ih) * S + l) * hd;
                float *to = merged + (in * S + l) * H + ih * hd;
                std::memcpy(to, from,
                            static_cast<size_t>(hd) * sizeof(float));
            }
    float *attn = arena.allocFloats(static_cast<size_t>(rows * H));
    nk::gemmRows(merged, attn_out_.w, attn, 0, rows, H, H);
    io::addBiasRows(attn, attn_out_.b, attn, 0, rows, H);
    io::addInto(attn, h2, attn, rows * H);
    float *bb = arena.allocFloats(static_cast<size_t>(rows * H));
    io::layerNormRows(attn, attn_norm_.gamma, attn_norm_.beta, bb,
                      nullptr, 0, rows, H, 1e-5f);

    // Residual blocks: norm(x + fc2(relu(fc1(x)))).
    float *r1 = arena.allocFloats(static_cast<size_t>(rows * H));
    float *r2 = arena.allocFloats(static_cast<size_t>(rows * H));
    for (const Residual &res : residuals_) {
        nk::gemmRows(bb, res.fc1.w, r1, 0, rows, H, H);
        io::addBiasReluRows(r1, res.fc1.b, r1, 0, rows, H);
        nk::gemmRows(r1, res.fc2.w, r2, 0, rows, H, H);
        io::addBiasRows(r2, res.fc2.b, r2, 0, rows, H);
        io::addInto(r2, bb, r2, rows * H);
        io::layerNormRows(r2, res.norm.gamma, res.norm.beta, bb, nullptr,
                          0, rows, H, 1e-5f);
    }

    // Task head: sum over sequence positions of fc2(relu(fc1(h))).
    const Head &head = heads_[static_cast<size_t>(task)];
    const int64_t hh = config_.head_hidden;
    float *hh1 = arena.allocFloats(static_cast<size_t>(rows * hh));
    nk::gemmRows(bb, head.fc1.w, hh1, 0, rows, H, hh);
    io::addBiasReluRows(hh1, head.fc1.b, hh1, 0, rows, hh);
    float *hs = arena.allocFloats(static_cast<size_t>(rows));
    nk::gemmRows(hh1, head.fc2.w, hs, 0, rows, hh, 1);
    io::addBiasRows(hs, head.fc2.b, hs, 0, rows, 1);
    float *sums = arena.allocFloats(static_cast<size_t>(n));
    io::sumRows(hs, sums, 0, n, S);
    // predictTlpNet widens the float predictions to double on readout.
    for (int64_t r = 0; r < n; ++r)
        out[r] = static_cast<double>(sums[r]);
}

} // namespace tlp::model
