/**
 * @file
 * Primitive-sequence feature cache for the scoring hot path
 * (DESIGN.md §13).
 *
 * Evolutionary search re-scores survivors every generation and mutation
 * changes few primitives, so most predictBatch candidates have been
 * featurized — and usually scored — before. The cache memoizes both
 * per candidate, keyed by a 128-bit content hash of the PrimitiveSeq
 * (two independent fnv1a-style walks; a primary-hash collision with a
 * mismatched secondary is treated as a miss, so a 64-bit collision
 * cannot silently serve the wrong candidate's row).
 *
 * Determinism contract: the cache is an accelerator, never an oracle —
 * features are pure functions of the sequence and scores are pure
 * per-row functions of (features, params, task), so cached and uncached
 * runs predict bit-identically; eviction is deterministic FIFO in
 * insertion order. Score memos carry the owning parameter fingerprint
 * ("epoch"): retraining or hot-swapping the net invalidates them
 * without touching the feature rows.
 *
 * Storage is fully preallocated at construction (feature slab, entry
 * array, open-addressed index with tombstone-triggered in-place
 * rebuild), so steady-state find/insert/evict performs zero heap
 * allocations — the TU is declared hot in tools/lint_manifest.txt.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/primitive.h"

namespace tlp::model {

/** 128-bit content key of a PrimitiveSeq. */
struct SeqKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const SeqKey &other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

/** Both hash walks in one pass over @p seq. */
SeqKey seqKeyOf(const sched::PrimitiveSeq &seq);

/** Bounded FIFO cache of feature rows + per-task score memos. */
class FeatureCache
{
  public:
    /** Hit/miss accounting (monotonic; reset never). */
    struct Stats
    {
        uint64_t score_hits = 0;    ///< memoized score reused
        uint64_t feature_hits = 0;  ///< cached row reused, forward re-run
        uint64_t misses = 0;        ///< extracted fresh into the cache
        uint64_t evictions = 0;     ///< FIFO evictions performed
        uint64_t bypasses = 0;      ///< extracted fresh, cache skipped
    };

    /** @p dim floats per feature row, at most @p capacity entries. */
    FeatureCache(int64_t dim, int64_t capacity);

    int64_t capacity() const { return capacity_; }
    int64_t dim() const { return dim_; }

    /** Live entries (monotone up to capacity; eviction reuses slots). */
    int64_t size() const { return size_; }

    /** True once every slot is occupied (inserts now evict). */
    bool full() const { return size_ == capacity_; }

    /**
     * The slot the next insert() will evict (meaningful only when
     * full()). Callers batching many lookups must check this against
     * the slots they still reference and bypass the cache on a clash —
     * see TlpCostModel::predictBatch.
     */
    int64_t nextVictim() const { return next_evict_; }

    /** Slot of @p key, or -1. Does not touch the stats counters. */
    int64_t find(const SeqKey &key) const;

    /**
     * Claim a slot for @p key (FIFO-evicting the oldest entry at
     * capacity) and return it; the caller must fill rowAt(slot) before
     * the next find() of this key. Counts a miss (plus an eviction when
     * one happened). @p key must not already be present.
     */
    int64_t insert(const SeqKey &key);

    const float *rowAt(int64_t slot) const;
    float *rowAt(int64_t slot);

    /** Memoized score of (slot, task, epoch) into @p out, if present. */
    bool scoreAt(int64_t slot, int task, uint64_t epoch,
                 double *out) const;

    /** Memoize @p score for (slot, task, epoch). */
    void storeScore(int64_t slot, int task, uint64_t epoch, double score);

    const Stats &stats() const { return stats_; }
    void noteScoreHit() { ++stats_.score_hits; }
    void noteFeatureHit() { ++stats_.feature_hits; }
    void noteBypass() { ++stats_.bypasses; }

  private:
    struct Entry
    {
        SeqKey key;
        int score_task = -1;        ///< -1 = no score memo
        uint64_t score_epoch = 0;   ///< params fingerprint of the memo
        double score = 0.0;
    };

    /** Index table values: 0 = empty, -1 = tombstone, else slot + 1. */
    int64_t probeFind(const SeqKey &key) const;
    void tableInsert(const SeqKey &key, int64_t slot);
    void tableErase(const SeqKey &key);
    void rebuildTable();

    int64_t dim_;
    int64_t capacity_;
    int64_t size_ = 0;
    int64_t next_evict_ = 0;     ///< FIFO cursor once full
    int64_t tombstones_ = 0;
    std::vector<float> slab_;    ///< capacity_ * dim_ feature rows
    std::vector<Entry> entries_;
    std::vector<int64_t> table_; ///< open-addressed, power-of-two sized
    uint64_t mask_ = 0;
    Stats stats_;
};

} // namespace tlp::model
