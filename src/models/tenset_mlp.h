/**
 * @file
 * The TenSet MLP baseline cost model.
 *
 * A multilayer perceptron over the Ansor-style hand-engineered features
 * (paper Sec. 2): the state-of-the-art offline baseline TLP is compared
 * against in Table 5 and the search experiments. Trained with the same
 * group-aware rank loss as TLP.
 */
#pragma once

#include "dataset/splits.h"
#include "models/tlp_model.h"
#include "nn/modules.h"

namespace tlp::model {

/** MLP hyper-parameters. */
struct MlpConfig
{
    int input = 164;     ///< Ansor feature width
    int hidden = 128;
    int layers = 2;      ///< hidden layers
};

/** The TenSet-style MLP. */
class TensetMlpNet : public nn::Module
{
  public:
    TensetMlpNet(MlpConfig config, Rng &rng);

    const MlpConfig &config() const { return config_; }

    /** x [N, input] -> scores [N]. */
    nn::Tensor forward(const nn::Tensor &x);

    std::vector<nn::Tensor> parameters() override;

  private:
    MlpConfig config_;
    std::vector<std::unique_ptr<nn::Linear>> layers_;
};

/** Train on a single-task LabeledSet; returns last-epoch loss. */
double trainMlp(TensetMlpNet &net, const data::LabeledSet &set,
                const TrainOptions &options);

/** Predict scores for every row of @p set. */
std::vector<double> predictMlp(TensetMlpNet &net,
                               const data::LabeledSet &set,
                               int batch_size = 512);

} // namespace tlp::model
