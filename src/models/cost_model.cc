#include "models/cost_model.h"

#include <cmath>

#include "features/ansor_features.h"
#include "schedule/lower.h"
#include "support/thread_pool.h"

namespace tlp::model {

namespace {

/**
 * Largest single forward pass of the batched scoring path; populations
 * beyond this are split to bound activation memory.
 */
constexpr int kMaxForwardBatch = 2048;

/** Ad-hoc LabeledSet holding only features (for batch prediction). */
data::LabeledSet
featureOnlySet(std::vector<float> features, int rows, int dim)
{
    data::LabeledSet set;
    set.rows = rows;
    set.feature_dim = dim;
    set.num_tasks = 1;
    set.features = std::move(features);
    set.labels.assign(static_cast<size_t>(rows),
                      std::numeric_limits<float>::quiet_NaN());
    set.groups.assign(static_cast<size_t>(rows), 0);
    return set;
}

/**
 * Lower + extract Ansor features, parallel over candidates. Lowering
 * and extraction are pure functions of the State, and every candidate
 * writes a disjoint feature row, so this is deterministic at any
 * thread count.
 */
std::vector<float>
ansorFeaturesOf(const std::vector<const sched::State *> &states)
{
    const size_t dim = static_cast<size_t>(feat::kAnsorFeatureSize);
    std::vector<float> features(states.size() * dim);
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(states.size()), 1,
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                const auto row = feat::extractAnsorFeatures(
                    sched::lower(*states[static_cast<size_t>(i)]));
                std::copy(row.begin(), row.end(),
                          features.begin() + static_cast<size_t>(i) * dim);
            }
        });
    return features;
}

std::vector<float>
ansorFeaturesOf(const std::vector<sched::State> &states)
{
    std::vector<const sched::State *> ptrs;
    ptrs.reserve(states.size());
    for (const auto &state : states)
        ptrs.push_back(&state);
    return ansorFeaturesOf(ptrs);
}

} // namespace

TlpCostModel::TlpCostModel(std::shared_ptr<TlpNet> net,
                           feat::TlpFeatureOptions feature_options,
                           int head_task)
    : net_(std::move(net)), feature_options_(feature_options),
      head_task_(head_task)
{
    TLP_CHECK(net_ != nullptr, "null TLP net");
    feature_options_.seq_len = net_->config().seq_len;
    feature_options_.emb_size = net_->config().emb_size;
}

std::vector<double>
TlpCostModel::scoreStates(int task_id,
                          const std::vector<sched::State> &states)
{
    return predictBatch(task_id, states);
}

std::vector<double>
TlpCostModel::predictBatch(int task_id,
                           const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    // Parallel feature extraction: extractTlpFeatures reads only the
    // PrimitiveSeq (no lowering, no shared state), and each candidate
    // owns a disjoint feature row.
    const size_t dim = static_cast<size_t>(feature_options_.seq_len) *
                       static_cast<size_t>(feature_options_.emb_size);
    std::vector<float> features(states.size() * dim);
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(states.size()), 1,
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                const auto row = feat::extractTlpFeatures(
                    states[static_cast<size_t>(i)].steps(),
                    feature_options_);
                std::copy(row.begin(), row.end(),
                          features.begin() + static_cast<size_t>(i) * dim);
            }
        });
    auto set = featureOnlySet(std::move(features),
                              static_cast<int>(states.size()),
                              static_cast<int>(dim));
    // One forward over the whole population (split only beyond the
    // activation-memory cap), instead of per-candidate forwards.
    return predictTlpNet(*net_, set, head_task_,
                         std::min(set.rows, kMaxForwardBatch));
}

TensetMlpCostModel::TensetMlpCostModel(std::shared_ptr<TensetMlpNet> net)
    : net_(std::move(net))
{
    TLP_CHECK(net_ != nullptr, "null MLP net");
}

std::vector<double>
TensetMlpCostModel::scoreStates(int task_id,
                                const std::vector<sched::State> &states)
{
    return predictBatch(task_id, states);
}

std::vector<double>
TensetMlpCostModel::predictBatch(int task_id,
                                 const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    auto set = featureOnlySet(ansorFeaturesOf(states),
                              static_cast<int>(states.size()),
                              feat::kAnsorFeatureSize);
    return predictMlp(*net_, set, std::min(set.rows, kMaxForwardBatch));
}

AnsorOnlineCostModel::AnsorOnlineCostModel(GbdtOptions options)
    : options_(options), gbdt_(options)
{
}

std::vector<double>
AnsorOnlineCostModel::scoreStates(int task_id,
                                  const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    if (!gbdt_.fitted()) {
        // No measurements yet: uninformative scores.
        return std::vector<double>(states.size(), 0.0);
    }
    const auto features = ansorFeaturesOf(states);
    return gbdt_.predict(features, static_cast<int>(states.size()),
                         feat::kAnsorFeatureSize);
}

void
AnsorOnlineCostModel::update(
    int task_id, const std::vector<const sched::State *> &states,
    const std::vector<double> &latency_ms)
{
    TLP_CHECK(states.size() == latency_ms.size(), "update size mismatch");
    const size_t dim = static_cast<size_t>(feat::kAnsorFeatureSize);
    const auto rows = ansorFeaturesOf(states);
    for (size_t i = 0; i < states.size(); ++i) {
        // Refit guard, part 1: a non-finite or non-positive latency
        // (faulted measurement that slipped past the measurer) would
        // poison every future label; drop the record.
        if (!std::isfinite(latency_ms[i]) || latency_ms[i] <= 0.0)
            continue;
        features_.insert(features_.end(), rows.begin() + i * dim,
                         rows.begin() + (i + 1) * dim);
        latencies_.push_back(static_cast<float>(latency_ms[i]));
        tasks_.push_back(task_id);
        auto it = task_min_.find(task_id);
        if (it == task_min_.end() ||
            it->second > latency_ms[i]) {
            task_min_[task_id] = static_cast<float>(latency_ms[i]);
        }
        ++rows_;
    }
    if (rows_ == 0)
        return;
    // Retrain from scratch on normalized labels (min_latency / latency).
    std::vector<float> labels(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
        labels[static_cast<size_t>(i)] =
            task_min_[tasks_[static_cast<size_t>(i)]] /
            latencies_[static_cast<size_t>(i)];
    }
    Gbdt refit(options_);
    refit.fit(features_, rows_, feat::kAnsorFeatureSize, labels);
    // Refit guard, part 2: spot-check the new ensemble on its own
    // training rows; a NaN prediction means the fit degenerated, so keep
    // the previous (healthy) ensemble instead of installing it.
    const int probe_rows = std::min(rows_, 16);
    const auto probe = refit.predict(
        std::vector<float>(features_.begin(),
                           features_.begin() +
                               static_cast<size_t>(probe_rows) * dim),
        probe_rows, feat::kAnsorFeatureSize);
    for (double p : probe) {
        if (!std::isfinite(p)) {
            ++refit_rejections_;
            return;
        }
    }
    gbdt_ = std::move(refit);
}

RandomCostModel::RandomCostModel(uint64_t seed) : rng_(seed) {}

void
RandomCostModel::serializeState(BinaryWriter &writer) const
{
    rng_.serialize(writer);
}

void
RandomCostModel::deserializeState(BinaryReader &reader)
{
    rng_ = Rng::deserialize(reader);
}

std::vector<double>
RandomCostModel::scoreStates(int task_id,
                             const std::vector<sched::State> &states)
{
    std::vector<double> scores(states.size());
    for (auto &score : scores)
        score = rng_.uniform();
    return scores;
}

} // namespace tlp::model
