#include "models/cost_model.h"

#include <cmath>

#include "features/ansor_features.h"
#include "schedule/lower.h"

namespace tlp::model {

namespace {

/** Ad-hoc LabeledSet holding only features (for batch prediction). */
data::LabeledSet
featureOnlySet(std::vector<float> features, int rows, int dim)
{
    data::LabeledSet set;
    set.rows = rows;
    set.feature_dim = dim;
    set.num_tasks = 1;
    set.features = std::move(features);
    set.labels.assign(static_cast<size_t>(rows),
                      std::numeric_limits<float>::quiet_NaN());
    set.groups.assign(static_cast<size_t>(rows), 0);
    return set;
}

std::vector<float>
ansorFeaturesOf(const std::vector<sched::State> &states)
{
    std::vector<float> features;
    features.reserve(states.size() *
                     static_cast<size_t>(feat::kAnsorFeatureSize));
    for (const auto &state : states) {
        const auto row = feat::extractAnsorFeatures(sched::lower(state));
        features.insert(features.end(), row.begin(), row.end());
    }
    return features;
}

} // namespace

TlpCostModel::TlpCostModel(std::shared_ptr<TlpNet> net,
                           feat::TlpFeatureOptions feature_options,
                           int head_task)
    : net_(std::move(net)), feature_options_(feature_options),
      head_task_(head_task)
{
    TLP_CHECK(net_ != nullptr, "null TLP net");
    feature_options_.seq_len = net_->config().seq_len;
    feature_options_.emb_size = net_->config().emb_size;
}

std::vector<double>
TlpCostModel::scoreStates(int task_id,
                          const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    std::vector<float> features;
    const int dim = feature_options_.seq_len * feature_options_.emb_size;
    features.reserve(states.size() * static_cast<size_t>(dim));
    for (const auto &state : states) {
        const auto row =
            feat::extractTlpFeatures(state.steps(), feature_options_);
        features.insert(features.end(), row.begin(), row.end());
    }
    auto set = featureOnlySet(std::move(features),
                              static_cast<int>(states.size()), dim);
    return predictTlpNet(*net_, set, head_task_);
}

TensetMlpCostModel::TensetMlpCostModel(std::shared_ptr<TensetMlpNet> net)
    : net_(std::move(net))
{
    TLP_CHECK(net_ != nullptr, "null MLP net");
}

std::vector<double>
TensetMlpCostModel::scoreStates(int task_id,
                                const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    auto set = featureOnlySet(ansorFeaturesOf(states),
                              static_cast<int>(states.size()),
                              feat::kAnsorFeatureSize);
    return predictMlp(*net_, set);
}

AnsorOnlineCostModel::AnsorOnlineCostModel(GbdtOptions options)
    : options_(options), gbdt_(options)
{
}

std::vector<double>
AnsorOnlineCostModel::scoreStates(int task_id,
                                  const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    if (!gbdt_.fitted()) {
        // No measurements yet: uninformative scores.
        return std::vector<double>(states.size(), 0.0);
    }
    const auto features = ansorFeaturesOf(states);
    return gbdt_.predict(features, static_cast<int>(states.size()),
                         feat::kAnsorFeatureSize);
}

void
AnsorOnlineCostModel::update(
    int task_id, const std::vector<const sched::State *> &states,
    const std::vector<double> &latency_ms)
{
    TLP_CHECK(states.size() == latency_ms.size(), "update size mismatch");
    for (size_t i = 0; i < states.size(); ++i) {
        const auto row =
            feat::extractAnsorFeatures(sched::lower(*states[i]));
        features_.insert(features_.end(), row.begin(), row.end());
        latencies_.push_back(static_cast<float>(latency_ms[i]));
        tasks_.push_back(task_id);
        auto it = task_min_.find(task_id);
        if (it == task_min_.end() ||
            it->second > latency_ms[i]) {
            task_min_[task_id] = static_cast<float>(latency_ms[i]);
        }
        ++rows_;
    }
    // Retrain from scratch on normalized labels (min_latency / latency).
    std::vector<float> labels(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
        labels[static_cast<size_t>(i)] =
            task_min_[tasks_[static_cast<size_t>(i)]] /
            latencies_[static_cast<size_t>(i)];
    }
    gbdt_ = Gbdt(options_);
    gbdt_.fit(features_, rows_, feat::kAnsorFeatureSize, labels);
}

RandomCostModel::RandomCostModel(uint64_t seed) : rng_(seed) {}

std::vector<double>
RandomCostModel::scoreStates(int task_id,
                             const std::vector<sched::State> &states)
{
    std::vector<double> scores(states.size());
    for (auto &score : scores)
        score = rng_.uniform();
    return scores;
}

} // namespace tlp::model
