#include "models/cost_model.h"

#include <cmath>
#include <cstring>

#include "features/ansor_features.h"
#include "schedule/lower.h"
#include "support/config.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace tlp::model {

namespace {

/**
 * Largest single forward pass of the batched scoring path; populations
 * beyond this are split to bound activation memory.
 */
constexpr int kMaxForwardBatch = 2048;

/** Ad-hoc LabeledSet holding only features (for batch prediction). */
data::LabeledSet
featureOnlySet(std::vector<float> features, int rows, int dim)
{
    data::LabeledSet set;
    set.rows = rows;
    set.feature_dim = dim;
    set.num_tasks = 1;
    set.features = std::move(features);
    set.labels.assign(static_cast<size_t>(rows),
                      std::numeric_limits<float>::quiet_NaN());
    set.groups.assign(static_cast<size_t>(rows), 0);
    return set;
}

/**
 * Lower + extract Ansor features, parallel over candidates. Lowering
 * and extraction are pure functions of the State, and every candidate
 * writes a disjoint feature row, so this is deterministic at any
 * thread count.
 */
std::vector<float>
ansorFeaturesOf(const std::vector<const sched::State *> &states)
{
    const size_t dim = static_cast<size_t>(feat::kAnsorFeatureSize);
    std::vector<float> features(states.size() * dim);
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(states.size()), 1,
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                const auto row = feat::extractAnsorFeatures(
                    sched::lower(*states[static_cast<size_t>(i)]));
                std::copy(row.begin(), row.end(),
                          features.begin() + static_cast<size_t>(i) * dim);
            }
        });
    return features;
}

std::vector<float>
ansorFeaturesOf(const std::vector<sched::State> &states)
{
    std::vector<const sched::State *> ptrs;
    ptrs.reserve(states.size());
    for (const auto &state : states)
        ptrs.push_back(&state);
    return ansorFeaturesOf(ptrs);
}

} // namespace

TlpInferOptions
TlpInferOptions::fromEnv()
{
    TlpInferOptions options;
    options.fused =
        static_cast<int64_t>(envOr("TLP_FUSED_INFER", 1.0)) != 0;
    options.cache_capacity = static_cast<int64_t>(
        envOr("TLP_FEATURE_CACHE",
              static_cast<double>(options.cache_capacity)));
    if (options.cache_capacity < 0)
        options.cache_capacity = 0;
    return options;
}

TlpCostModel::TlpCostModel(std::shared_ptr<TlpNet> net,
                           feat::TlpFeatureOptions feature_options,
                           int head_task, TlpInferOptions infer_options)
    : net_(std::move(net)), feature_options_(feature_options),
      head_task_(head_task), infer_options_(infer_options)
{
    TLP_CHECK(net_ != nullptr, "null TLP net");
    feature_options_.seq_len = net_->config().seq_len;
    feature_options_.emb_size = net_->config().emb_size;
    params_ = net_->parameters();
    if (infer_options_.fused && !net_->config().lstm_backbone) {
        fused_ = std::make_unique<FusedTlpInference>(net_);
        packed_epoch_ = paramsFingerprint();
    }
    if (infer_options_.cache_capacity > 0) {
        cache_ = std::make_unique<FeatureCache>(
            static_cast<int64_t>(feature_options_.seq_len) *
                feature_options_.emb_size,
            infer_options_.cache_capacity);
    }
}

std::vector<double>
TlpCostModel::scoreStates(int task_id,
                          const std::vector<sched::State> &states)
{
    return predictBatch(task_id, states);
}

uint64_t
TlpCostModel::paramsFingerprint() const
{
    // Content hash over every parameter tensor. ~0.2 ms for the default
    // net — amortized to sub-microsecond per candidate — and robust
    // against every way the weights can change under us: continued
    // training, loadParameters() on snapshot install, hot-swap.
    uint64_t hash = 0x7e9f00d5ull;
    for (const nn::Tensor &param : params_) {
        const auto &value = param.value();
        hash = hashCombine(hash, value.size());
        hash = hashCombine(
            hash, fnv1a(value.data(), value.size() * sizeof(float)));
    }
    return hash;
}

FeatureCache::Stats
TlpCostModel::cacheStats() const
{
    return cache_ ? cache_->stats() : FeatureCache::Stats{};
}

std::vector<double>
TlpCostModel::interpretedForward(const std::vector<float> &features,
                                 int rows)
{
    const int dim =
        feature_options_.seq_len * feature_options_.emb_size;
    auto set = featureOnlySet(features, rows, dim);
    // One forward over the whole pending set (split only beyond the
    // activation-memory cap), instead of per-candidate forwards.
    return predictTlpNet(*net_, set, head_task_,
                         std::min(set.rows, kMaxForwardBatch));
}

std::vector<double>
TlpCostModel::predictBatch(int task_id,
                           const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    const auto n = static_cast<int64_t>(states.size());
    const size_t dim = static_cast<size_t>(feature_options_.seq_len) *
                       static_cast<size_t>(feature_options_.emb_size);
    std::vector<double> scores(states.size());

    // Stale-weight guard: score memos are keyed by this fingerprint and
    // the packed fused weights are refreshed when it moves.
    const uint64_t epoch =
        (cache_ || fused_) ? paramsFingerprint() : 0;
    if (fused_ && epoch != packed_epoch_) {
        fused_->repack();
        packed_epoch_ = epoch;
    }

    if (!cache_) {
        // No cache: extract every row (parallel; extractTlpFeaturesInto
        // reads only the PrimitiveSeq and each candidate owns a
        // disjoint row) and forward the whole population.
        batch_.resize(states.size() * dim);
        ThreadPool::global().parallelFor(
            0, n, 1, [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                    feat::extractTlpFeaturesInto(
                        states[static_cast<size_t>(i)].steps(),
                        feature_options_,
                        batch_.data() + static_cast<size_t>(i) * dim);
                }
            });
        if (fused_) {
            fused_->predict(batch_.data(), n, head_task_,
                            scores.data());
            return scores;
        }
        return interpretedForward(batch_, static_cast<int>(n));
    }

    // Cached path. Pass 1 (parallel): hash every candidate's sequence.
    keys_.resize(states.size());
    ThreadPool::global().parallelFor(
        0, n, 1, [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i)
                keys_[static_cast<size_t>(i)] = seqKeyOf(
                    states[static_cast<size_t>(i)].steps());
        });

    // Pass 2 (serial): classify against the cache. Score memos resolve
    // immediately; everything else joins the pending forward set. A
    // batch reads its referenced slots only after classification, so an
    // insert must never evict a slot an earlier candidate of this batch
    // still points at — when the FIFO victim is claimed, the candidate
    // bypasses the cache (slot -1: extracted straight into the batch
    // buffer, never memoized).
    pending_state_.clear();
    pending_slot_.clear();
    pending_fresh_.clear();
    claimed_.assign(static_cast<size_t>(cache_->capacity()), 0);
    for (int64_t i = 0; i < n; ++i) {
        int64_t slot = cache_->find(keys_[static_cast<size_t>(i)]);
        bool fresh = false;
        if (slot < 0) {
            fresh = true;
            if (cache_->full() &&
                claimed_[static_cast<size_t>(cache_->nextVictim())]) {
                cache_->noteBypass();
                slot = -1;
            } else {
                slot = cache_->insert(keys_[static_cast<size_t>(i)]);
            }
        } else if (cache_->scoreAt(slot, head_task_, epoch,
                                   &scores[static_cast<size_t>(i)])) {
            cache_->noteScoreHit();
            continue;
        } else {
            cache_->noteFeatureHit();
        }
        if (slot >= 0)
            claimed_[static_cast<size_t>(slot)] = 1;
        pending_state_.push_back(i);
        pending_slot_.push_back(slot);
        pending_fresh_.push_back(fresh ? 1 : 0);
    }
    const auto pending = static_cast<int64_t>(pending_state_.size());
    if (pending == 0)
        return scores;

    // Pass 3 (parallel): extract the fresh rows — into their cache slot,
    // or directly into the batch buffer for bypassed candidates. A
    // duplicated candidate elsewhere in `states` maps to the same slot
    // as a feature hit, so row fills must complete before any slot is
    // read — hence the separate gather pass below.
    batch_.resize(static_cast<size_t>(pending) * dim);
    ThreadPool::global().parallelFor(
        0, pending, 1, [&](int64_t begin, int64_t end) {
            for (int64_t p = begin; p < end; ++p) {
                if (!pending_fresh_[static_cast<size_t>(p)])
                    continue;
                const int64_t slot =
                    pending_slot_[static_cast<size_t>(p)];
                feat::extractTlpFeaturesInto(
                    states[static_cast<size_t>(
                               pending_state_[static_cast<size_t>(p)])]
                        .steps(),
                    feature_options_,
                    slot >= 0
                        ? cache_->rowAt(slot)
                        : batch_.data() + static_cast<size_t>(p) * dim);
            }
        });

    // Pass 4 (parallel): gather cached pending rows into the batch.
    ThreadPool::global().parallelFor(
        0, pending, 1, [&](int64_t begin, int64_t end) {
            for (int64_t p = begin; p < end; ++p) {
                const int64_t slot =
                    pending_slot_[static_cast<size_t>(p)];
                if (slot < 0)
                    continue;
                std::memcpy(batch_.data() + static_cast<size_t>(p) * dim,
                            cache_->rowAt(slot), dim * sizeof(float));
            }
        });

    // Forward the pending subset. Rows are independent through the
    // whole net, so scoring the subset equals scoring it inside the
    // full population — which is why cache hits cannot change bits.
    if (fused_) {
        forward_scores_.resize(static_cast<size_t>(pending));
        fused_->predict(batch_.data(), pending, head_task_,
                        forward_scores_.data());
    } else {
        forward_scores_ =
            interpretedForward(batch_, static_cast<int>(pending));
    }
    for (int64_t p = 0; p < pending; ++p) {
        const double score = forward_scores_[static_cast<size_t>(p)];
        scores[static_cast<size_t>(
            pending_state_[static_cast<size_t>(p)])] = score;
        if (pending_slot_[static_cast<size_t>(p)] >= 0)
            cache_->storeScore(pending_slot_[static_cast<size_t>(p)],
                               head_task_, epoch, score);
    }
    return scores;
}

TensetMlpCostModel::TensetMlpCostModel(std::shared_ptr<TensetMlpNet> net)
    : net_(std::move(net))
{
    TLP_CHECK(net_ != nullptr, "null MLP net");
}

std::vector<double>
TensetMlpCostModel::scoreStates(int task_id,
                                const std::vector<sched::State> &states)
{
    return predictBatch(task_id, states);
}

std::vector<double>
TensetMlpCostModel::predictBatch(int task_id,
                                 const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    auto set = featureOnlySet(ansorFeaturesOf(states),
                              static_cast<int>(states.size()),
                              feat::kAnsorFeatureSize);
    return predictMlp(*net_, set, std::min(set.rows, kMaxForwardBatch));
}

AnsorOnlineCostModel::AnsorOnlineCostModel(GbdtOptions options)
    : options_(options), gbdt_(options)
{
}

std::vector<double>
AnsorOnlineCostModel::scoreStates(int task_id,
                                  const std::vector<sched::State> &states)
{
    if (states.empty())
        return {};
    if (!gbdt_.fitted()) {
        // No measurements yet: uninformative scores.
        return std::vector<double>(states.size(), 0.0);
    }
    const auto features = ansorFeaturesOf(states);
    return gbdt_.predict(features, static_cast<int>(states.size()),
                         feat::kAnsorFeatureSize);
}

void
AnsorOnlineCostModel::update(
    int task_id, const std::vector<const sched::State *> &states,
    const std::vector<double> &latency_ms)
{
    TLP_CHECK(states.size() == latency_ms.size(), "update size mismatch");
    const size_t dim = static_cast<size_t>(feat::kAnsorFeatureSize);
    const auto rows = ansorFeaturesOf(states);
    for (size_t i = 0; i < states.size(); ++i) {
        // Refit guard, part 1: a non-finite or non-positive latency
        // (faulted measurement that slipped past the measurer) would
        // poison every future label; drop the record.
        if (!std::isfinite(latency_ms[i]) || latency_ms[i] <= 0.0)
            continue;
        features_.insert(features_.end(), rows.begin() + i * dim,
                         rows.begin() + (i + 1) * dim);
        latencies_.push_back(static_cast<float>(latency_ms[i]));
        tasks_.push_back(task_id);
        auto it = task_min_.find(task_id);
        if (it == task_min_.end() ||
            it->second > latency_ms[i]) {
            task_min_[task_id] = static_cast<float>(latency_ms[i]);
        }
        ++rows_;
    }
    if (rows_ == 0)
        return;
    // Retrain from scratch on normalized labels (min_latency / latency).
    std::vector<float> labels(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
        labels[static_cast<size_t>(i)] =
            task_min_[tasks_[static_cast<size_t>(i)]] /
            latencies_[static_cast<size_t>(i)];
    }
    Gbdt refit(options_);
    refit.fit(features_, rows_, feat::kAnsorFeatureSize, labels);
    // Refit guard, part 2: spot-check the new ensemble on its own
    // training rows; a NaN prediction means the fit degenerated, so keep
    // the previous (healthy) ensemble instead of installing it.
    const int probe_rows = std::min(rows_, 16);
    const auto probe = refit.predict(
        std::vector<float>(features_.begin(),
                           features_.begin() +
                               static_cast<size_t>(probe_rows) * dim),
        probe_rows, feat::kAnsorFeatureSize);
    for (double p : probe) {
        if (!std::isfinite(p)) {
            ++refit_rejections_;
            return;
        }
    }
    gbdt_ = std::move(refit);
}

RandomCostModel::RandomCostModel(uint64_t seed) : rng_(seed) {}

void
RandomCostModel::serializeState(BinaryWriter &writer) const
{
    rng_.serialize(writer);
}

void
RandomCostModel::deserializeState(BinaryReader &reader)
{
    rng_ = Rng::deserialize(reader);
}

std::vector<double>
RandomCostModel::scoreStates(int task_id,
                             const std::vector<sched::State> &states)
{
    std::vector<double> scores(states.size());
    for (auto &score : scores)
        score = rng_.uniform();
    return scores;
}

} // namespace tlp::model
