#include "models/supervisor.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/io_env.h"

namespace tlp::model {

namespace {

constexpr uint32_t kStateTag = sectionTag("STAT");
constexpr uint32_t kEndTag = sectionTag("TEND");

// Stream discriminators of the per-(step, attempt) fault draws, so the
// nan-grad and loss-spike Bernoullis are independent.
constexpr uint64_t kStreamNanGrad = 0x6772;   // "gr"
constexpr uint64_t kStreamLossSpike = 0x6c73; // "ls"

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               // tlp-lint: allow(wallclock) -- intentional TrainSupervisor wall-clock budget; never feeds model math (DESIGN.md s10)
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// --- HealthCounters -----------------------------------------------------

std::string
healthEventName(HealthEvent event)
{
    switch (event) {
      case HealthEvent::NanLoss:            return "nan_loss";
      case HealthEvent::NanGrad:            return "nan_grad";
      case HealthEvent::GradExplosion:      return "grad_explosion";
      case HealthEvent::LossDivergence:     return "loss_divergence";
      case HealthEvent::Rollback:           return "rollback";
      case HealthEvent::RetryExhausted:     return "retry_exhausted";
      case HealthEvent::AbortPolicy:        return "abort_policy";
      case HealthEvent::WallClockBudget:    return "wall_clock_budget";
      case HealthEvent::StepBudget:         return "step_budget";
      case HealthEvent::NanScore:           return "nan_score";
      case HealthEvent::ConstantScore:      return "constant_score";
      case HealthEvent::LowRankCorrelation: return "low_rank_correlation";
      case HealthEvent::Failover:           return "failover";
      case HealthEvent::CheckpointWritten:  return "checkpoint_written";
      case HealthEvent::NumEvents:          break;
    }
    return "unknown";
}

int64_t
HealthCounters::total() const
{
    int64_t sum = 0;
    for (int64_t count : counts)
        sum += count;
    return sum;
}

std::string
HealthCounters::toString() const
{
    std::string out;
    for (int e = 0; e < kNumHealthEvents; ++e) {
        if (counts[static_cast<size_t>(e)] == 0)
            continue;
        if (!out.empty())
            out += ' ';
        out += healthEventName(static_cast<HealthEvent>(e)) + "=" +
               std::to_string(counts[static_cast<size_t>(e)]);
    }
    return out.empty() ? "none" : out;
}

void
HealthCounters::serialize(BinaryWriter &writer) const
{
    writer.writePod<uint32_t>(static_cast<uint32_t>(kNumHealthEvents));
    for (int64_t count : counts)
        writer.writePod<int64_t>(count);
}

HealthCounters
HealthCounters::deserialize(BinaryReader &reader)
{
    const auto count = reader.readPod<uint32_t>();
    // Older artifacts may carry fewer counters (appended events); more
    // than we know of — or an absurd count — is corruption.
    if (count > 256) {
        throw SerializeError(ErrorCode::Corrupt,
                             "health counter count " +
                                 std::to_string(count) + " is implausible");
    }
    if (count > static_cast<uint32_t>(kNumHealthEvents)) {
        throw SerializeError(ErrorCode::VersionSkew,
                             "artifact holds " + std::to_string(count) +
                                 " health counters, this build knows " +
                                 std::to_string(kNumHealthEvents));
    }
    HealthCounters counters;
    for (uint32_t e = 0; e < count; ++e)
        counters.counts[e] = reader.readPod<int64_t>();
    return counters;
}

// --- TrainFaultProfile --------------------------------------------------

bool
TrainFaultProfile::enabled() const
{
    return nan_grad_prob > 0.0 || loss_spike_prob > 0.0 ||
           collapse_after_updates > 0;
}

TrainFaultProfile
TrainFaultProfile::uniform(double total_rate, uint64_t seed)
{
    TrainFaultProfile profile;
    profile.nan_grad_prob = total_rate / 2.0;
    profile.loss_spike_prob = total_rate / 2.0;
    profile.seed = seed;
    return profile;
}

uint64_t
TrainFaultProfile::digest() const
{
    uint64_t digest = fnv1a(&nan_grad_prob, sizeof(nan_grad_prob));
    digest = fnv1a(&loss_spike_prob, sizeof(loss_spike_prob), digest);
    digest = fnv1a(&collapse_after_updates, sizeof(collapse_after_updates),
                   digest);
    digest = fnv1a(&seed, sizeof(seed), digest);
    return digest;
}

bool
TrainFaultProfile::draw(int64_t step, int attempt, uint64_t stream,
                        double prob) const
{
    if (prob <= 0.0)
        return false;
    // Pure function of (step, attempt, stream, seed): retries see a
    // fresh draw and replays are bit-identical regardless of call order.
    uint64_t h = hashCombine(seed, static_cast<uint64_t>(step));
    h = hashCombine(h, static_cast<uint64_t>(attempt));
    h = hashCombine(h, stream);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < prob;
}

// --- training checkpoints ("TLPT") --------------------------------------

void
writeTrainCheckpoint(std::ostream &os, const TrainCheckpoint &ckpt)
{
    BinaryWriter writer(os);
    writeHeader(writer, kTrainCheckpointMagic, kTrainCheckpointVersion);
    writeSection(writer, kStateTag, [&](BinaryWriter &w) {
        w.writePod<int32_t>(ckpt.epoch);
        w.writePod<int64_t>(ckpt.steps_done);
        w.writePod<double>(ckpt.loss_ewma);
        w.writePod<uint8_t>(ckpt.ewma_ready ? 1 : 0);
        ckpt.health.serialize(w);
        w.writePod<uint32_t>(static_cast<uint32_t>(ckpt.params.size()));
        for (const auto &param : ckpt.params)
            w.writeVector(param);
        w.writeString(ckpt.optimizer_state);
    });
    writeSectionRaw(writer, kEndTag, "");
}

Result<TrainCheckpoint>
loadTrainCheckpoint(std::istream &is)
{
    TrainCheckpoint ckpt;
    const Status status = guardedParse([&] {
        BinaryReader reader(is);
        readHeader(reader, kTrainCheckpointMagic, kTrainCheckpointVersion,
                   kTrainCheckpointVersion);
        bool seen_state = false;
        bool seen_end = false;
        while (!seen_end && reader.remaining() > 0) {
            Section section = readSection(reader);
            if (!section.crc_ok) {
                throw SerializeError(
                    ErrorCode::Corrupt,
                    "checksum mismatch in training-checkpoint section " +
                        sectionTagName(section.tag));
            }
            std::istringstream payload(section.payload);
            BinaryReader body(payload);
            if (section.tag == kStateTag) {
                ckpt.epoch = body.readPod<int32_t>();
                ckpt.steps_done = body.readPod<int64_t>();
                ckpt.loss_ewma = body.readPod<double>();
                ckpt.ewma_ready = body.readPod<uint8_t>() != 0;
                ckpt.health = HealthCounters::deserialize(body);
                const auto param_count = body.readPod<uint32_t>();
                if (param_count > body.remaining()) {
                    throw SerializeError(
                        ErrorCode::Corrupt,
                        "training checkpoint advertises " +
                            std::to_string(param_count) + " parameters");
                }
                ckpt.params.reserve(param_count);
                for (uint32_t p = 0; p < param_count; ++p)
                    ckpt.params.push_back(body.readVector<float>());
                ckpt.optimizer_state = body.readString();
                seen_state = true;
            } else if (section.tag == kEndTag) {
                seen_end = true;
            }
            // Unknown tags: skipped for forward compatibility.
        }
        if (!seen_state || !seen_end) {
            throw SerializeError(
                ErrorCode::Truncated,
                "training checkpoint is missing required sections");
        }
    });
    if (!status.ok())
        return status;
    return ckpt;
}

Result<TrainCheckpoint>
loadTrainCheckpoint(const std::string &path)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return loadTrainCheckpoint(is);
}

Status
verifyTrainCheckpoint(std::istream &is)
{
    Result<TrainCheckpoint> result = loadTrainCheckpoint(is);
    return result.ok() ? Status() : result.status();
}

// --- TrainSupervisor ----------------------------------------------------

TrainSupervisor::TrainSupervisor(std::vector<nn::Tensor> params,
                                 nn::Adam &adam, SupervisorOptions options)
    : params_(std::move(params)), adam_(adam),
      options_(std::move(options)), backoff_rng_(options_.seed),
      start_seconds_(monotonicSeconds())
{
    if (options_.enabled)
        takeSnapshot();
    if (options_.health_out != nullptr)
        health_ = *options_.health_out;
}

void
TrainSupervisor::takeSnapshot()
{
    snapshot_params_.resize(params_.size());
    for (size_t p = 0; p < params_.size(); ++p)
        snapshot_params_[p] = params_[p].value();
    std::ostringstream buffer(std::ios::binary);
    BinaryWriter writer(buffer);
    adam_.serializeState(writer);
    snapshot_optimizer_ = buffer.str();
}

void
TrainSupervisor::rollback()
{
    for (size_t p = 0; p < params_.size(); ++p)
        params_[p].value() = snapshot_params_[p];
    std::istringstream buffer(snapshot_optimizer_, std::ios::binary);
    BinaryReader reader(buffer);
    adam_.deserializeState(reader);
    health_[HealthEvent::Rollback]++;
}

bool
TrainSupervisor::gradsUnhealthy(double *norm_out) const
{
    double norm_sq = 0.0;
    bool non_finite = false;
    for (const nn::Tensor &param : params_) {
        // grad() is non-const on Tensor; the node is shared, values are
        // only read here.
        for (float g : const_cast<nn::Tensor &>(param).grad()) {
            if (!std::isfinite(g))
                non_finite = true;
            norm_sq += static_cast<double>(g) * g;
        }
    }
    *norm_out = std::sqrt(norm_sq);
    return non_finite;
}

StepOutcome
TrainSupervisor::step(const std::function<double()> &attempt)
{
    if (!options_.enabled) {
        attempt();
        adam_.step();
        ++steps_done_;
        return StepOutcome::Ok;
    }
    if (stopped_)
        return StepOutcome::Stop;

    // Budget watchdogs fire before work is spent on the next step; the
    // parameters are whatever the last healthy step produced.
    if (options_.max_steps > 0 && steps_done_ >= options_.max_steps) {
        health_[HealthEvent::StepBudget]++;
        stopped_ = true;
        publishHealth();
        return StepOutcome::Stop;
    }
    if (options_.max_wall_seconds > 0.0 &&
        monotonicSeconds() - start_seconds_ > options_.max_wall_seconds) {
        health_[HealthEvent::WallClockBudget]++;
        stopped_ = true;
        publishHealth();
        return StepOutcome::Stop;
    }

    const int64_t step_id = step_serial_++;
    const double schedule_lr = adam_.lr();
    for (int att = 0; att <= options_.max_retries; ++att) {
        double loss = attempt();

        // Deterministic fault injection (off unless a profile is set).
        if (options_.faults.draw(step_id, att, kStreamLossSpike,
                                 options_.faults.loss_spike_prob)) {
            loss *= 1e4;
        }
        if (options_.faults.draw(step_id, att, kStreamNanGrad,
                                 options_.faults.nan_grad_prob) &&
            !params_.empty() && params_[0].numel() > 0) {
            params_[0].grad()[0] =
                std::numeric_limits<float>::quiet_NaN();
        }

        // Health checks, cheapest first.
        HealthEvent problem = HealthEvent::NumEvents;
        double grad_norm = 0.0;
        if (!std::isfinite(loss)) {
            problem = HealthEvent::NanLoss;
        } else if (ewma_ready_ &&
                   loss > options_.loss_divergence_factor * loss_ewma_ +
                              options_.loss_divergence_floor) {
            problem = HealthEvent::LossDivergence;
        } else if (gradsUnhealthy(&grad_norm)) {
            problem = HealthEvent::NanGrad;
        } else if (!std::isfinite(grad_norm) ||
                   grad_norm > options_.grad_norm_limit) {
            problem = HealthEvent::GradExplosion;
        }

        if (problem == HealthEvent::NumEvents) {
            adam_.step();
            adam_.setLr(schedule_lr); // backoff is per-step, not sticky
            loss_ewma_ = ewma_ready_
                             ? (1.0 - options_.loss_ewma_alpha) * loss_ewma_ +
                                   options_.loss_ewma_alpha * loss
                             : loss;
            ewma_ready_ = true;
            last_loss_ = loss;
            ++steps_done_;
            takeSnapshot();
            publishHealth();
            return StepOutcome::Ok;
        }

        health_[problem]++;
        rollback(); // restores params, moments, step count, and lr

        if (options_.policy == RecoveryPolicy::AbortOnFault) {
            health_[HealthEvent::AbortPolicy]++;
            adam_.setLr(schedule_lr);
            stopped_ = true;
            publishHealth();
            return StepOutcome::Stop;
        }
        if (att == options_.max_retries) {
            health_[HealthEvent::RetryExhausted]++;
            adam_.setLr(schedule_lr);
            publishHealth();
            return StepOutcome::Skipped;
        }
        // Seeded learning-rate backoff with mild jitter so retries of a
        // genuinely borderline step explore slightly different updates.
        const double jitter = backoff_rng_.uniform(0.9, 1.0);
        adam_.setLr(schedule_lr *
                    std::pow(options_.lr_backoff, att + 1) * jitter);
    }
    // tlp-lint: allow(loader-fatal) -- internal invariant in training logic, unreachable from artifact bytes; checkpoint parsing is guardedParse
    TLP_PANIC("unreachable: supervisor retry loop fell through");
}

void
TrainSupervisor::publishHealth()
{
    if (options_.health_out != nullptr)
        *options_.health_out = health_;
}

TrainCheckpoint
TrainSupervisor::makeCheckpoint(int epoch) const
{
    TrainCheckpoint ckpt;
    ckpt.epoch = epoch;
    ckpt.steps_done = steps_done_;
    ckpt.loss_ewma = loss_ewma_;
    ckpt.ewma_ready = ewma_ready_;
    ckpt.health = health_;
    ckpt.params.resize(params_.size());
    for (size_t p = 0; p < params_.size(); ++p)
        ckpt.params[p] = params_[p].value();
    std::ostringstream buffer(std::ios::binary);
    BinaryWriter writer(buffer);
    adam_.serializeState(writer);
    ckpt.optimizer_state = buffer.str();
    return ckpt;
}

void
TrainSupervisor::endEpoch(int epoch)
{
    if (!options_.enabled || options_.checkpoint_path.empty())
        return;
    const int every = options_.checkpoint_every > 0
                          ? options_.checkpoint_every
                          : 1;
    if (epoch % every != 0)
        return;
    const TrainCheckpoint ckpt = makeCheckpoint(epoch);
    const Status status =
        atomicWriteFile(options_.checkpoint_path, [&](std::ostream &os) {
            writeTrainCheckpoint(os, ckpt);
        });
    if (!status.ok()) {
        warn("training checkpoint write failed (run continues): ",
             status.toString());
        return;
    }
    health_[HealthEvent::CheckpointWritten]++;
    publishHealth();
}

} // namespace tlp::model
