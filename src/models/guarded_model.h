/**
 * @file
 * Degraded-mode search: a health-probed cost-model fallback ladder.
 *
 * A learned cost model can go numerically sick mid-campaign — NaN
 * scores, output collapsed to a constant, or predictions that stop
 * correlating with measured latencies. Aborting throws away the whole
 * search; scoring with garbage silently wastes the measurement budget
 * (Pruner showed a cheap fallback scorer retains most search quality).
 * GuardedCostModel wraps an ordered ladder of models (typically
 * TlpCostModel -> AnsorOnlineCostModel -> RandomCostModel), probes the
 * active model's health on every scoring call and on measured feedback,
 * and quarantines a sick model by failing over to the next rung —
 * without aborting the campaign. Every transition lands in the shared
 * HealthCounters and the fallback position serializes into the tuning
 * checkpoint, so a resumed session continues in the same degraded mode.
 *
 * FaultInjectedCostModel deterministically breaks a wrapped model after
 * a fixed number of online updates (TrainFaultProfile::
 * collapse_after_updates), making every failover path testable.
 */
#pragma once

#include <memory>

#include "models/cost_model.h"
#include "models/supervisor.h"

namespace tlp::model {

/** GuardedCostModel knobs. */
struct GuardOptions
{
    /** Scores spanning less than this over >= min_probe_candidates
     *  candidates count as output collapse. */
    double constant_eps = 1e-9;
    /** Collapse is only judged on populations at least this large. */
    int min_probe_candidates = 8;
    /** Rank-correlation probe cadence: every Nth update() (0 = off). */
    int probe_every = 4;
    /** Spearman(model scores, -latency) below this floor is sick. */
    double rank_corr_floor = -0.2;
    /** Measured records the correlation probe keeps (most recent). */
    int probe_window = 64;
    /** Where health counters accumulate (optional, caller-owned). */
    HealthCounters *health_out = nullptr;
};

/**
 * A cost model that survives its own members: scores through the active
 * rung of a fallback ladder, failing over on NaN output, constant
 * collapse, or rank correlation below the floor.
 */
class GuardedCostModel : public CostModel
{
  public:
    /** @p ladder is tried in order; must be non-empty. The last rung is
     *  trusted unconditionally (nothing to fail over to). */
    GuardedCostModel(std::vector<std::shared_ptr<CostModel>> ladder,
                     GuardOptions options = {});

    /** Stable identity for checkpoint compatibility ("guarded:a>b>c"). */
    std::string name() const override;

    /** Name of the rung currently scoring, e.g. "ansor-online". */
    std::string activeName() const;

    /** Index of the active rung (0 = the preferred model). */
    int activeIndex() const { return active_; }

    /** Health counters accumulated so far. */
    const HealthCounters &health() const { return health_; }

    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    std::vector<double>
    predictBatch(int task_id, const std::vector<sched::State> &states)
        override;

    /** Feedback goes to EVERY rung (keeps the online fallbacks warm so
     *  a later failover is seamless), then runs the correlation probe
     *  against the active rung. */
    void update(int task_id,
                const std::vector<const sched::State *> &states,
                const std::vector<double> &latency_ms) override;

    /** Lowering requirement of the ACTIVE rung (failover can only relax
     *  it in the standard tlp>ansor>random ladder's final rung). */
    bool needsLowering() const override;

    /** Ladder position, probe window, counters, and member states. */
    void serializeState(BinaryWriter &writer) const override;
    void deserializeState(BinaryReader &reader) override;

  private:
    /** Score via the active rung, failing over until scores are sane. */
    std::vector<double>
    guardedScore(int task_id, const std::vector<sched::State> &states,
                 bool batched);

    /** True when @p scores trip the NaN or collapse probe. */
    bool scoresUnhealthy(const std::vector<double> &scores,
                         HealthEvent *event) const;

    /** Advance to the next rung, recording the transition. */
    void failover(HealthEvent cause);

    /** Mirror the counters into options_.health_out (when set). */
    void publishHealth();

    std::vector<std::shared_ptr<CostModel>> ladder_;
    GuardOptions options_;
    int active_ = 0;
    int64_t updates_seen_ = 0;
    HealthCounters health_;
    /** Most recent measured (state, latency) pairs for the probe. */
    std::vector<sched::State> probe_states_;
    std::vector<double> probe_latencies_;
};

/**
 * Deterministic model-sickness injection: forwards to @p inner until
 * @p collapse_after_updates update() calls have happened, then returns
 * alternating NaN / constant scores. Mirrors TrainFaultProfile on the
 * search side; never used outside tests and benches.
 */
class FaultInjectedCostModel : public CostModel
{
  public:
    FaultInjectedCostModel(std::shared_ptr<CostModel> inner,
                           int collapse_after_updates);

    std::string name() const override { return inner_->name(); }
    std::vector<double>
    scoreStates(int task_id, const std::vector<sched::State> &states)
        override;
    std::vector<double>
    predictBatch(int task_id, const std::vector<sched::State> &states)
        override;
    void update(int task_id,
                const std::vector<const sched::State *> &states,
                const std::vector<double> &latency_ms) override;
    bool needsLowering() const override
    {
        return inner_->needsLowering();
    }
    void serializeState(BinaryWriter &writer) const override;
    void deserializeState(BinaryReader &reader) override;

    /** True once the injected collapse has triggered. */
    bool collapsed() const;

  private:
    std::vector<double> maybeCollapse(std::vector<double> scores);

    std::shared_ptr<CostModel> inner_;
    int collapse_after_updates_;
    int64_t updates_seen_ = 0;
};

/** The standard ladder: @p preferred, then ansor-online, then random. */
std::shared_ptr<GuardedCostModel>
makeGuardedLadder(std::shared_ptr<CostModel> preferred,
                  GuardOptions options = {});

} // namespace tlp::model
