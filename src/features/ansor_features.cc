#include "features/ansor_features.h"

#include <algorithm>
#include <cmath>

namespace tlp::feat {

using sched::Annotation;
using sched::ComputeLoc;
using sched::LoweredNest;
using sched::LoweredStage;

namespace {

float
logf1p(double value)
{
    return static_cast<float>(std::log1p(std::max(0.0, value)));
}

double
footprintBytes(const LoweredStage &stage, int depth)
{
    const auto tiles = stage.tileExtentsBelow(depth);
    double bytes = 0.0;
    for (const auto &access : stage.spec.accesses) {
        bytes += static_cast<double>(access.footprintElems(tiles)) *
                 access.elem_bytes;
    }
    return bytes;
}

/** Summarize one compute stage into kAnsorStageFeatures floats. */
void
stageFeatures(const LoweredNest &nest, const LoweredStage &stage,
              float *out)
{
    int idx = 0;
    auto put = [&](float value) {
        if (idx < kAnsorStageFeatures)
            out[idx++] = value;
    };

    const double points = static_cast<double>(stage.spec.totalPoints());
    const double iterations = static_cast<double>(stage.totalIterations());

    // --- computation group ---
    put(logf1p(points));
    put(logf1p(points * stage.spec.flops_per_point));
    put(static_cast<float>(stage.spec.flops_per_point));
    put(logf1p(iterations));
    put(points > 0 ? static_cast<float>(iterations / points) : 1.0f);
    put(static_cast<float>(stage.loops.size()));
    put(stage.loops.empty()
            ? 0.0f
            : logf1p(static_cast<double>(stage.loops.back().extent)));

    // --- annotation group ---
    double parallel = 1.0, vec = 1.0, unroll_loops = 0.0;
    double block = 1.0, thread = 1.0, vthread = 1.0;
    int vec_innermost = 0;
    for (size_t q = 0; q < stage.loops.size(); ++q) {
        const auto &loop = stage.loops[q];
        const double extent = static_cast<double>(loop.extent);
        switch (loop.ann) {
          case Annotation::Parallel:  parallel *= extent; break;
          case Annotation::Vectorize:
            vec *= extent;
            vec_innermost = q + 1 == stage.loops.size();
            break;
          case Annotation::Unroll:    unroll_loops += 1.0; break;
          case Annotation::BlockX:    block *= extent; break;
          case Annotation::ThreadX:   thread *= extent; break;
          case Annotation::VThread:   vthread *= extent; break;
          case Annotation::None:      break;
        }
    }
    put(logf1p(parallel));
    put(logf1p(vec));
    put(static_cast<float>(vec_innermost));
    put(static_cast<float>(unroll_loops));
    put(logf1p(static_cast<double>(stage.pragma_unroll)));
    put(logf1p(block));
    put(logf1p(thread));
    put(logf1p(vthread));
    put(static_cast<float>(stage.storage_align != 0));

    // --- memory access group ---
    int reads = 0, writes = 0;
    double touched = 0.0;
    const auto full = stage.tileExtentsBelow(-1);
    for (const auto &access : stage.spec.accesses) {
        (access.is_write ? writes : reads)++;
        touched += static_cast<double>(access.footprintElems(full)) *
                   access.elem_bytes;
    }
    put(static_cast<float>(reads));
    put(static_cast<float>(writes));
    put(logf1p(touched));
    const double flops = points * stage.spec.flops_per_point;
    put(static_cast<float>(flops / std::max(1.0, touched)));  // intensity

    // --- buffer-footprint group ---
    // One mid-depth working-set snapshot plus per-statement byte totals:
    // the per-statement summary style of Ansor's buffer-access group.
    // Deliberately lossy — the full tiling structure is not recoverable,
    // which is the limitation TLP's primitive-sequence features remove.
    const int depth_n = static_cast<int>(stage.loops.size());
    const int mid = std::max(0, depth_n / 2);
    put(logf1p(footprintBytes(stage, std::min(depth_n - 1, mid))));
    put(logf1p(static_cast<double>(
        stage.iterationsDownTo(std::min(depth_n - 1, mid)))));
    put(static_cast<float>(depth_n));
    for (int pad = 0; pad < 6; ++pad)
        put(0.0f);

    // --- innermost statement group ---
    const auto inner_tiles =
        stage.tileExtentsBelow(static_cast<int>(stage.loops.size()) - 2);
    double inner_bytes = 0.0;
    for (const auto &access : stage.spec.accesses) {
        inner_bytes += static_cast<double>(
                           access.footprintElems(inner_tiles)) *
                       access.elem_bytes;
    }
    put(logf1p(inner_bytes));
    int reduction_loops = 0;
    for (const auto &loop : stage.loops)
        reduction_loops += loop.is_reduction;
    put(static_cast<float>(reduction_loops));
    put(static_cast<float>(stage.loc == ComputeLoc::At));
    put(static_cast<float>(stage.at_iter + 1));
    put(static_cast<float>(stage.is_cache_stage));
    put(static_cast<float>(stage.redirects.size()));

    // Aggregate loop statistics (Ansor-style: no raw loop-order dump —
    // per-statement summaries only).
    double spatial_extent = 1.0, reduction_extent = 1.0;
    double outer_extent = stage.loops.empty()
                              ? 1.0
                              : static_cast<double>(
                                    stage.loops.front().extent);
    int annotated_loops = 0;
    for (const auto &loop : stage.loops) {
        if (loop.is_reduction) {
            reduction_extent *= static_cast<double>(loop.extent);
        } else {
            spatial_extent *= static_cast<double>(loop.extent);
        }
        annotated_loops += loop.ann != Annotation::None;
    }
    put(logf1p(spatial_extent));
    put(logf1p(reduction_extent));
    put(logf1p(outer_extent));
    put(static_cast<float>(annotated_loops));
    put(logf1p(footprintBytes(stage,
                              static_cast<int>(stage.loops.size()) - 1)));

    while (idx < kAnsorStageFeatures)
        put(0.0f);
}

} // namespace

std::vector<float>
extractAnsorFeatures(const LoweredNest &nest)
{
    std::vector<float> features(static_cast<size_t>(kAnsorFeatureSize),
                                0.0f);

    // Rank compute stages by work, heaviest first.
    std::vector<const LoweredStage *> stages;
    double inlined_flops = 0.0;
    for (const auto &stage : nest.stages) {
        if (stage.is_placeholder)
            continue;
        if (stage.loc == ComputeLoc::Inlined) {
            inlined_flops += static_cast<double>(stage.spec.totalPoints()) *
                             stage.spec.flops_per_point;
            continue;
        }
        stages.push_back(&stage);
    }
    std::sort(stages.begin(), stages.end(),
              [](const LoweredStage *a, const LoweredStage *b) {
                  const double wa =
                      static_cast<double>(a->spec.totalPoints()) *
                      a->spec.flops_per_point;
                  const double wb =
                      static_cast<double>(b->spec.totalPoints()) *
                      b->spec.flops_per_point;
                  return wa > wb;
              });

    for (int s = 0; s < kAnsorStages &&
                    s < static_cast<int>(stages.size()); ++s) {
        stageFeatures(nest, *stages[s],
                      features.data() + s * kAnsorStageFeatures);
    }

    double total_flops = inlined_flops;
    for (const auto *stage : stages) {
        total_flops += static_cast<double>(stage->spec.totalPoints()) *
                       stage->spec.flops_per_point;
    }
    float *tail = features.data() + kAnsorStages * kAnsorStageFeatures;
    tail[0] = static_cast<float>(stages.size());
    tail[1] = static_cast<float>(std::log1p(total_flops));
    tail[2] = nest.is_gpu ? 1.0f : 0.0f;
    tail[3] = static_cast<float>(std::log1p(inlined_flops));
    return features;
}

} // namespace tlp::feat
