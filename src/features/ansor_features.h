/**
 * @file
 * Ansor-style per-statement features (the baseline representation).
 *
 * Mirrors Ansor's hand-engineered feature extraction (~164 features per
 * innermost statement drawn from computation, memory access, arithmetic
 * intensity, annotation, and allocation groups): each compute stage of
 * the *lowered* program is summarized into a fixed vector, and the
 * per-stage vectors of the heaviest stages are concatenated into one
 * program-level vector. The TenSet MLP and the Ansor-online GBDT consume
 * these features.
 *
 * Two properties matter for the reproduction:
 *   1. Extraction REQUIRES the lowered program, so baselines pay the
 *      lowering cost TLP avoids (paper Fig. 10).
 *   2. The summary is lossy — loop structure beyond the recorded scalar
 *      statistics is invisible — so a perfect fit is impossible, unlike
 *      TLP's (near-)lossless primitive-sequence view.
 */
#pragma once

#include <vector>

#include "schedule/lower.h"

namespace tlp::feat {

/** Number of features per summarized stage. */
inline constexpr int kAnsorStageFeatures = 40;

/** Number of stages concatenated (heaviest first). */
inline constexpr int kAnsorStages = 4;

/** Program-level global features appended at the end. */
inline constexpr int kAnsorGlobalFeatures = 4;

/** Total Ansor feature vector width (= 164, as in the paper). */
inline constexpr int kAnsorFeatureSize =
    kAnsorStageFeatures * kAnsorStages + kAnsorGlobalFeatures;

/** Extract the fixed-width Ansor-style feature vector of @p nest. */
std::vector<float> extractAnsorFeatures(const sched::LoweredNest &nest);

} // namespace tlp::feat
