/**
 * @file
 * TLP feature extraction (paper Sec. 4, Figs. 4-5).
 *
 * A schedule primitive is decomposed into its three basic elements:
 *   - primitive type  -> a one-hot vector (14 kinds),
 *   - numeric params  -> kept as numbers (signed-log compressed),
 *   - name params     -> tokens, as NLP tasks treat words.
 * The per-primitive features are concatenated positionally (Method 3 of
 * Sec. 4.1); the resulting sequence is cropped/padded to a fixed
 * [seq_len x emb_size] matrix and normalized. Method 2 (one token per
 * whole primitive) is also implemented for ablation.
 *
 * Crucially this reads only the PrimitiveSeq — no lowering, no tensor
 * program — which is where TLP's tuning-speed advantage comes from.
 */
#pragma once

#include <vector>

#include "schedule/primitive.h"

namespace tlp::feat {

/** Feature-extraction method (paper Sec. 4.1). */
enum class TlpMethod : uint8_t
{
    Decomposed = 0,    ///< Method 3: type one-hot + numbers + tokens
    TokenPerPrim = 1,  ///< Method 2: one token per primitive
};

/** Options of the TLP extractor. */
struct TlpFeatureOptions
{
    /** Crop/pad sequence length (paper default 25 on the CPU dataset). */
    int seq_len = 25;
    /** Crop/pad embedding size (paper default 22). */
    int emb_size = 22;
    TlpMethod method = TlpMethod::Decomposed;
};

/** Stable token id of a character parameter (1-based; 0 = padding). */
int nameToken(const std::string &name);

/**
 * Raw (uncropped) embedding of one primitive: one-hot type followed by
 * encoded parameters in their original order.
 */
std::vector<float> primitiveEmbedding(const sched::Primitive &prim);

/**
 * Extract the fixed-size feature matrix of a schedule.
 * @return row-major [seq_len x emb_size] floats.
 */
std::vector<float> extractTlpFeatures(const sched::PrimitiveSeq &seq,
                                      const TlpFeatureOptions &options = {});

/**
 * Allocation-free variant for the scoring hot path (DESIGN.md §13):
 * writes the same row-major [seq_len x emb_size] matrix as
 * extractTlpFeatures — bit-identically — into caller-owned @p out
 * without touching the heap (per-primitive embeddings are encoded
 * straight into their cropped destination row).
 */
void extractTlpFeaturesInto(const sched::PrimitiveSeq &seq,
                            const TlpFeatureOptions &options, float *out);

/** Embedding width of @p seq before cropping (max over primitives). */
int rawEmbeddingSize(const sched::PrimitiveSeq &seq);

} // namespace tlp::feat
