#include "features/tlp_features.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace tlp::feat {

using sched::kNumPrimKinds;
using sched::Param;
using sched::Primitive;
using sched::PrimitiveSeq;

namespace {

/** Signed log compression keeps magnitudes NN-friendly. */
float
encodeNumber(int64_t value)
{
    const double magnitude = std::log1p(std::abs(static_cast<double>(value)));
    return static_cast<float>(value < 0 ? -magnitude : magnitude);
}

} // namespace

int
nameToken(const std::string &name)
{
    // Stable hash bucketing: distinct names map to (almost always)
    // distinct small token ids; identical names always collide.
    return 1 + static_cast<int>(fnv1a(name.data(), name.size()) % 61);
}

std::vector<float>
primitiveEmbedding(const Primitive &prim)
{
    std::vector<float> emb(static_cast<size_t>(kNumPrimKinds), 0.0f);
    emb[static_cast<size_t>(prim.kind)] = 1.0f;
    for (const Param &param : prim.params) {
        if (std::holds_alternative<int64_t>(param)) {
            emb.push_back(encodeNumber(std::get<int64_t>(param)));
        } else {
            const auto &name = std::get<std::string>(param);
            emb.push_back(static_cast<float>(nameToken(name)) / 8.0f);
        }
    }
    return emb;
}

int
rawEmbeddingSize(const PrimitiveSeq &seq)
{
    int size = 0;
    for (const Primitive &prim : seq.prims)
        size = std::max(size, kNumPrimKinds + prim.numParams());
    return size;
}

std::vector<float>
extractTlpFeatures(const PrimitiveSeq &seq, const TlpFeatureOptions &options)
{
    std::vector<float> features(static_cast<size_t>(options.seq_len) *
                                static_cast<size_t>(options.emb_size));
    extractTlpFeaturesInto(seq, options, features.data());
    return features;
}

void
extractTlpFeaturesInto(const PrimitiveSeq &seq,
                       const TlpFeatureOptions &options, float *out)
{
    const size_t rows = static_cast<size_t>(options.seq_len);
    const size_t cols = static_cast<size_t>(options.emb_size);
    std::fill(out, out + rows * cols, 0.0f);

    const size_t count =
        std::min<size_t>(rows, seq.prims.size());   // crop long sequences
    for (size_t i = 0; i < count; ++i) {
        const Primitive &prim = seq.prims[i];
        float *row = out + i * cols;
        if (options.method == TlpMethod::TokenPerPrim) {
            // Method 2: the whole primitive becomes one token.
            uint64_t h = static_cast<uint64_t>(prim.kind);
            for (const Param &param : prim.params) {
                if (std::holds_alternative<int64_t>(param)) {
                    h = hashCombine(h, static_cast<uint64_t>(
                                           std::get<int64_t>(param)));
                } else {
                    const auto &name = std::get<std::string>(param);
                    h = hashCombine(h, fnv1a(name.data(), name.size()));
                }
            }
            row[0] = static_cast<float>(1 + h % 9973) / 512.0f;
            continue;
        }
        // The uncropped embedding is the kind one-hot followed by the
        // encoded params in order (primitiveEmbedding); writing each
        // element straight into its cropped destination is bit-identical
        // to building the vector and copying the first `cols` entries.
        if (static_cast<size_t>(prim.kind) < cols)
            row[static_cast<size_t>(prim.kind)] = 1.0f;
        size_t col = static_cast<size_t>(kNumPrimKinds);
        for (const Param &param : prim.params) {
            if (col >= cols)
                break;   // crop wide primitives
            if (std::holds_alternative<int64_t>(param)) {
                row[col] = encodeNumber(std::get<int64_t>(param));
            } else {
                const auto &name = std::get<std::string>(param);
                row[col] = static_cast<float>(nameToken(name)) / 8.0f;
            }
            ++col;
        }
    }
}

} // namespace tlp::feat
