/**
 * @file
 * Dataset collection: networks + platforms -> labeled program records.
 *
 * Plays the role of TenSet's 50-day measurement campaign: for every
 * deduplicated subgraph of the requested networks, sample random
 * schedules with the sketch policy and label them on every requested
 * platform with the measurement harness (simulator + noise).
 */
#pragma once

#include "dataset/dataset.h"
#include "hwmodel/measurer.h"

namespace tlp::data {

/** Collection parameters. */
struct CollectOptions
{
    std::vector<std::string> networks;    ///< model-zoo names
    std::vector<std::string> platforms;   ///< hardware preset names
    bool is_gpu = false;                  ///< GPU sketch rules
    int programs_per_subgraph = 128;
    uint64_t seed = 0xda7a;
    double measure_noise = 0.02;
    /** Fault injection for the measurement campaign (default: none).
     *  Failed measurements become NaN labels and are tallied in
     *  Dataset::failure_counts. */
    hw::FaultProfile faults;
    int measure_retries = 2;              ///< retries for transient faults
};

/** Collect a dataset according to @p options. */
Dataset collectDataset(const CollectOptions &options);

} // namespace tlp::data
