/**
 * @file
 * Train/valid/test splits and feature-matrix assembly.
 *
 * Following the paper (Sec. 6.1): the five evaluation networks form the
 * test set; the remaining records are split 9:1 into train and valid.
 * Subgraphs shared between train and test networks are excluded from
 * training so the held-out networks are genuinely unseen.
 */
#pragma once

#include "dataset/dataset.h"
#include "features/tlp_features.h"

namespace tlp::data {

/** Record-index split. */
struct Split
{
    std::vector<int> train_records;
    std::vector<int> valid_records;
    std::vector<int> test_records;
    std::vector<int> test_groups;
};

/** Build the paper-style split. */
Split makeSplit(const Dataset &dataset,
                const std::vector<std::string> &test_networks,
                double valid_fraction = 0.1, uint64_t seed = 0x5117);

/** A dense feature/label matrix ready for training. */
struct LabeledSet
{
    int rows = 0;
    int feature_dim = 0;
    int num_tasks = 1;
    std::vector<float> features;   ///< rows x feature_dim
    std::vector<float> labels;     ///< rows x num_tasks; NaN = missing
    std::vector<int> groups;       ///< group id per row (for rank loss)

    const float *row(int r) const
    {
        return features.data() +
               static_cast<size_t>(r) * static_cast<size_t>(feature_dim);
    }
};

/**
 * Assemble TLP features + labels for @p records.
 * @p platforms selects the label tasks (one column per platform index).
 */
LabeledSet buildTlpSet(const Dataset &dataset,
                       const std::vector<int> &records,
                       const std::vector<int> &platforms,
                       const feat::TlpFeatureOptions &options = {});

/**
 * Assemble Ansor-style features + labels (single platform). Requires
 * replaying and lowering every record — the cost TLP avoids.
 */
LabeledSet buildAnsorSet(const Dataset &dataset,
                         const std::vector<int> &records, int platform);

} // namespace tlp::data
