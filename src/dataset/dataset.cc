#include "dataset/dataset.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "features/tlp_features.h"
#include "support/io_env.h"
#include "support/logging.h"

namespace tlp::data {

namespace {

constexpr uint32_t kMagic = Dataset::kMagic;   // "TLPD"

// v3 section tags, in file order.
constexpr uint32_t kMetaTag = sectionTag("META");
constexpr uint32_t kGroupsTag = sectionTag("GRPS");
constexpr uint32_t kRecordsTag = sectionTag("RECS");
constexpr uint32_t kNetworksTag = sectionTag("NETS");
constexpr uint32_t kFailuresTag = sectionTag("FAIL");
constexpr uint32_t kEndTag = sectionTag("TEND");

/**
 * Records are framed in chunks of this many so one flipped byte costs at
 * most one chunk in salvage mode, while the CRC/length overhead stays
 * far below 1% of the payload.
 */
constexpr size_t kRecordsPerChunk = 256;

/** Human name of a v3 section tag, for corruption_counts keys. */
std::string
sectionName(uint32_t tag)
{
    if (tag == kMetaTag)     return "meta";
    if (tag == kGroupsTag)   return "groups";
    if (tag == kRecordsTag)  return "records";
    if (tag == kNetworksTag) return "networks";
    if (tag == kFailuresTag) return "failures";
    if (tag == kEndTag)      return "end";
    return "tag_" + sectionTagName(tag);
}

void
writeRecord(BinaryWriter &writer, const ProgramRecord &record)
{
    writer.writePod(record.group);
    record.seq.serialize(writer);
    writer.writeVector(record.latency_ms);
}

ProgramRecord
readRecord(BinaryReader &reader)
{
    ProgramRecord record;
    record.group = reader.readPod<uint32_t>();
    record.seq = sched::PrimitiveSeq::deserialize(reader);
    record.latency_ms = reader.readVector<float>();
    return record;
}

/** Structural validity of one record against the loaded spine. */
bool
recordFits(const ProgramRecord &record, const Dataset &dataset)
{
    return record.group < dataset.groups.size() &&
           record.latency_ms.size() == dataset.platforms.size();
}

void
parseMeta(BinaryReader &reader, Dataset &dataset)
{
    dataset.is_gpu = reader.readPod<uint8_t>() != 0;
    const auto num_platforms = reader.readPod<uint32_t>();
    // A platform name costs >= 8 bytes (its length prefix).
    if (num_platforms > reader.remaining() / 8 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid platform count " +
                                 std::to_string(num_platforms));
    }
    for (uint32_t i = 0; i < num_platforms; ++i)
        dataset.platforms.push_back(reader.readString());
}

void
parseGroups(BinaryReader &reader, Dataset &dataset)
{
    const auto num_groups = reader.readPod<uint32_t>();
    // A group costs well over 30 stream bytes (subgraph + key + mins).
    if (num_groups > reader.remaining() / 30 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid group count " +
                                 std::to_string(num_groups));
    }
    for (uint32_t i = 0; i < num_groups; ++i) {
        SubgraphGroup group;
        group.subgraph = std::make_shared<ir::Subgraph>(
            ir::Subgraph::deserialize(reader));
        group.key = reader.readString();
        group.min_latency_ms = reader.readVector<float>();
        if (group.min_latency_ms.size() != dataset.platforms.size()) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "group min-latency arity " +
                                     std::to_string(
                                         group.min_latency_ms.size()) +
                                     " != platform count " +
                                     std::to_string(
                                         dataset.platforms.size()));
        }
        dataset.groups.push_back(std::move(group));
    }
}

void
parseNetworks(BinaryReader &reader, Dataset &dataset)
{
    const auto num_networks = reader.readPod<uint32_t>();
    if (num_networks > reader.remaining() / 12 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid network count " +
                                 std::to_string(num_networks));
    }
    for (uint32_t i = 0; i < num_networks; ++i) {
        const std::string network = reader.readString();
        const auto count = reader.readPod<uint32_t>();
        if (count > reader.remaining() / 8 + 1) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "invalid network group count " +
                                     std::to_string(count));
        }
        auto &entries = dataset.network_groups[network];
        for (uint32_t j = 0; j < count; ++j) {
            const auto group = reader.readPod<int32_t>();
            const auto weight = reader.readPod<int32_t>();
            entries.push_back({group, weight});
        }
    }
}

void
parseFailures(BinaryReader &reader, Dataset &dataset)
{
    const auto num_statuses = reader.readPod<uint32_t>();
    if (num_statuses > reader.remaining() / 16 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid failure-count entries " +
                                 std::to_string(num_statuses));
    }
    for (uint32_t i = 0; i < num_statuses; ++i) {
        const std::string status = reader.readString();
        dataset.failure_counts[status] = reader.readPod<int64_t>();
    }
}

/** The flat (unframed) v2 stream body, kept for old files. */
void
parseV2Body(BinaryReader &reader, Dataset &dataset)
{
    parseMeta(reader, dataset);
    parseGroups(reader, dataset);
    const auto num_records = reader.readPod<uint64_t>();
    // A record costs >= 16 stream bytes (group + seq len + latency len).
    if (num_records > reader.remaining() / 16 + 1) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid record count " +
                                 std::to_string(num_records));
    }
    dataset.records.reserve(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
        ProgramRecord record = readRecord(reader);
        if (!recordFits(record, dataset)) {
            throw SerializeError(ErrorCode::Corrupt,
                                 "record " + std::to_string(i) +
                                     " references a missing group or has "
                                     "wrong label arity");
        }
        dataset.records.push_back(std::move(record));
    }
    parseNetworks(reader, dataset);
    parseFailures(reader, dataset);
}

} // namespace

int
Dataset::platformIndex(const std::string &platform) const
{
    for (size_t i = 0; i < platforms.size(); ++i)
        if (platforms[i] == platform)
            return static_cast<int>(i);
    // tlp-lint: allow(loader-fatal) -- user-error lookup (bad --platform), not a parse path; the loaders are tryLoad/trySave
    TLP_FATAL("platform not in dataset: ", platform);
}

std::vector<int>
Dataset::recordsOfGroup(int group) const
{
    std::vector<int> indices;
    for (size_t r = 0; r < records.size(); ++r)
        if (records[r].group == static_cast<uint32_t>(group))
            indices.push_back(static_cast<int>(r));
    return indices;
}

void
Dataset::refreshMinLatencies()
{
    for (auto &group : groups)
        group.min_latency_ms.assign(platforms.size(),
                                    std::numeric_limits<float>::quiet_NaN());
    for (const auto &record : records) {
        auto &mins = groups.at(record.group).min_latency_ms;
        for (size_t p = 0; p < platforms.size(); ++p) {
            if (!record.hasLabel(p))
                continue;
            if (std::isnan(mins[p]) || record.latency_ms[p] < mins[p])
                mins[p] = record.latency_ms[p];
        }
    }
}

float
Dataset::label(int record, int platform) const
{
    const ProgramRecord &rec = records.at(static_cast<size_t>(record));
    if (!rec.hasLabel(static_cast<size_t>(platform)))
        return std::numeric_limits<float>::quiet_NaN();
    const float min_lat =
        groups.at(rec.group).min_latency_ms.at(
            static_cast<size_t>(platform));
    return min_lat / rec.latency_ms[static_cast<size_t>(platform)];
}

void
Dataset::save(const std::string &path) const
{
    const Status status = trySave(path);
    if (!status.ok())
        // tlp-lint: allow(loader-fatal) -- documented fatal convenience wrapper over trySave for CLI/bench callers
        TLP_FATAL("cannot save dataset ", path, ": ", status.toString());
}

Status
Dataset::trySave(const std::string &path) const
{
    return atomicWriteFile(path,
                           [this](std::ostream &os) { save(os); });
}

void
Dataset::save(std::ostream &os) const
{
    BinaryWriter writer(os);
    writeHeader(writer, kMagic, kFormatVersion);
    writeSection(writer, kMetaTag, [&](BinaryWriter &w) {
        w.writePod<uint8_t>(is_gpu ? 1 : 0);
        w.writePod<uint32_t>(static_cast<uint32_t>(platforms.size()));
        for (const auto &platform : platforms)
            w.writeString(platform);
    });
    writeSection(writer, kGroupsTag, [&](BinaryWriter &w) {
        w.writePod<uint32_t>(static_cast<uint32_t>(groups.size()));
        for (const auto &group : groups) {
            group.subgraph->serialize(w);
            w.writeString(group.key);
            w.writeVector(group.min_latency_ms);
        }
    });
    for (size_t start = 0; start < records.size();
         start += kRecordsPerChunk) {
        const size_t count =
            std::min(kRecordsPerChunk, records.size() - start);
        writeSection(writer, kRecordsTag, [&](BinaryWriter &w) {
            w.writePod<uint32_t>(static_cast<uint32_t>(count));
            for (size_t i = start; i < start + count; ++i)
                writeRecord(w, records[i]);
        });
    }
    writeSection(writer, kNetworksTag, [&](BinaryWriter &w) {
        w.writePod<uint32_t>(
            static_cast<uint32_t>(network_groups.size()));
        for (const auto &[network, groups_of] : network_groups) {
            w.writeString(network);
            w.writePod<uint32_t>(static_cast<uint32_t>(groups_of.size()));
            for (const auto &[group, weight] : groups_of) {
                w.writePod<int32_t>(group);
                w.writePod<int32_t>(weight);
            }
        }
    });
    writeSection(writer, kFailuresTag, [&](BinaryWriter &w) {
        w.writePod<uint32_t>(
            static_cast<uint32_t>(failure_counts.size()));
        for (const auto &[status, count] : failure_counts) {
            w.writeString(status);
            w.writePod<int64_t>(count);
        }
    });
    writeSectionRaw(writer, kEndTag, "");
}

Dataset
Dataset::load(const std::string &path)
{
    auto result = tryLoad(path);
    if (!result.ok()) {
        // tlp-lint: allow(loader-fatal) -- documented fatal convenience wrapper over tryLoad for CLI/bench callers
        TLP_FATAL("cannot load dataset ", path, ": ",
                  result.status().toString());
    }
    return result.take();
}

Dataset
Dataset::load(std::istream &is)
{
    auto result = tryLoad(is);
    if (!result.ok())
        // tlp-lint: allow(loader-fatal) -- documented fatal convenience wrapper over tryLoad for CLI/bench callers
        TLP_FATAL("cannot load dataset: ", result.status().toString());
    return result.take();
}

Result<Dataset>
Dataset::tryLoad(const std::string &path, const LoadOptions &options)
{
    const Status injected = IoEnv::global().checkRead(path);
    if (!injected.ok())
        return injected;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error(ErrorCode::IoError,
                             "cannot open for read: " + path);
    }
    return tryLoad(is, options);
}

Result<Dataset>
Dataset::tryLoad(std::istream &is, const LoadOptions &options)
{
    Dataset dataset;
    const Status status = guardedParse([&] {
        BinaryReader reader(is);
        const uint32_t version =
            readHeader(reader, kMagic, kMinFormatVersion, kFormatVersion);
        if (version == 2) {
            // Flat stream without checksums: bounded reads still apply,
            // but there is nothing to salvage around.
            parseV2Body(reader, dataset);
            return;
        }

        auto fail = [&](ErrorCode code, const std::string &message) {
            throw SerializeError(code, message);
        };
        auto tally = [&](const std::string &what) {
            dataset.corruption_counts[what] += 1;
        };

        bool seen_meta = false;
        bool seen_groups = false;
        bool seen_networks = false;
        bool seen_failures = false;
        bool seen_end = false;
        while (!seen_end && reader.remaining() > 0) {
            Section section;
            try {
                section = readSection(reader);
            } catch (const SerializeError &error) {
                // The frame itself is broken (inflated length field or
                // a cut-off header): nothing after it can be trusted.
                if (!options.salvage)
                    throw;
                tally("truncated");
                break;
            }
            const std::string name = sectionName(section.tag);
            if (!section.crc_ok && options.verify_checksums) {
                if (!options.salvage) {
                    fail(ErrorCode::Corrupt,
                         "checksum mismatch in section " + name);
                }
                tally(name + "_crc");
                continue;
            }
            if (section.tag == kEndTag) {
                seen_end = true;
                continue;
            }

            std::istringstream payload(section.payload);
            BinaryReader body(payload);
            try {
                if (section.tag == kMetaTag) {
                    if (seen_meta)
                        fail(ErrorCode::Corrupt, "duplicate meta section");
                    parseMeta(body, dataset);
                    seen_meta = true;
                } else if (section.tag == kGroupsTag) {
                    if (seen_groups || !seen_meta) {
                        fail(ErrorCode::Corrupt,
                             "misplaced groups section");
                    }
                    parseGroups(body, dataset);
                    seen_groups = true;
                } else if (section.tag == kRecordsTag) {
                    if (!seen_groups) {
                        if (!options.salvage) {
                            fail(ErrorCode::Corrupt,
                                 "records section before groups");
                        }
                        tally("orphan_records");
                        continue;
                    }
                    const auto count = body.readPod<uint32_t>();
                    for (uint32_t i = 0; i < count; ++i) {
                        ProgramRecord record = readRecord(body);
                        if (!recordFits(record, dataset)) {
                            if (!options.salvage) {
                                fail(ErrorCode::Corrupt,
                                     "record references a missing group "
                                     "or has wrong label arity");
                            }
                            tally("bad_record");
                            continue;
                        }
                        dataset.records.push_back(std::move(record));
                    }
                } else if (section.tag == kNetworksTag) {
                    if (seen_networks) {
                        fail(ErrorCode::Corrupt,
                             "duplicate networks section");
                    }
                    parseNetworks(body, dataset);
                    seen_networks = true;
                } else {
                    if (section.tag != kFailuresTag)
                        continue;   // unknown section: skip, forward compat
                    if (seen_failures) {
                        fail(ErrorCode::Corrupt,
                             "duplicate failures section");
                    }
                    parseFailures(body, dataset);
                    seen_failures = true;
                }
            } catch (const SerializeError &error) {
                // A CRC-valid section that still fails to parse (or a
                // structural rule above): salvage skips the section.
                if (!options.salvage)
                    throw;
                tally(name + "_parse");
            }
        }

        // The platform list and group spine are unrecoverable: without
        // them no record can be interpreted, salvage or not.
        if (!seen_meta) {
            fail(ErrorCode::Corrupt,
                 "dataset meta section missing or corrupt");
        }
        if (!seen_groups) {
            fail(ErrorCode::Corrupt,
                 "dataset groups section missing or corrupt");
        }
        if (!seen_end) {
            if (!options.salvage) {
                fail(ErrorCode::Truncated,
                     "file ends before the end-of-file marker");
            }
            if (dataset.corruption_counts.empty())
                tally("missing_end");
        } else if (reader.remaining() > 0) {
            if (!options.salvage) {
                fail(ErrorCode::Corrupt,
                     "trailing bytes after the end-of-file marker");
            }
            tally("trailing_bytes");
        }
        if (!options.salvage && (!seen_networks || !seen_failures))
            fail(ErrorCode::Corrupt, "dataset section missing");
    });
    if (!status.ok())
        return status;
    return dataset;
}

std::map<int, int64_t>
Dataset::seqLenHistogram() const
{
    std::map<int, int64_t> histogram;
    for (const auto &record : records)
        histogram[record.seq.size()] += 1;
    return histogram;
}

std::map<std::string, int>
Dataset::maxEmbeddingSizes() const
{
    std::map<std::string, int> sizes;
    for (const auto &record : records) {
        for (const auto &prim : record.seq.prims) {
            const std::string name = sched::primKindName(prim.kind);
            const int width = sched::kNumPrimKinds + prim.numParams();
            auto it = sizes.find(name);
            if (it == sizes.end() || it->second < width)
                sizes[name] = width;
        }
    }
    return sizes;
}

double
Dataset::repetitionRate() const
{
    if (records.empty())
        return 0.0;
    std::set<uint64_t> distinct;
    for (const auto &record : records)
        distinct.insert(record.seq.hash());
    const double repeats = static_cast<double>(records.size()) -
                           static_cast<double>(distinct.size());
    return repeats / static_cast<double>(records.size());
}

} // namespace tlp::data
