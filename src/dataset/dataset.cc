#include "dataset/dataset.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "features/tlp_features.h"
#include "support/logging.h"

namespace tlp::data {

namespace {

constexpr uint32_t kMagic = 0x544c5044;   // "TLPD"

} // namespace

int
Dataset::platformIndex(const std::string &platform) const
{
    for (size_t i = 0; i < platforms.size(); ++i)
        if (platforms[i] == platform)
            return static_cast<int>(i);
    TLP_FATAL("platform not in dataset: ", platform);
}

std::vector<int>
Dataset::recordsOfGroup(int group) const
{
    std::vector<int> indices;
    for (size_t r = 0; r < records.size(); ++r)
        if (records[r].group == static_cast<uint32_t>(group))
            indices.push_back(static_cast<int>(r));
    return indices;
}

void
Dataset::refreshMinLatencies()
{
    for (auto &group : groups)
        group.min_latency_ms.assign(platforms.size(),
                                    std::numeric_limits<float>::quiet_NaN());
    for (const auto &record : records) {
        auto &mins = groups.at(record.group).min_latency_ms;
        for (size_t p = 0; p < platforms.size(); ++p) {
            if (!record.hasLabel(p))
                continue;
            if (std::isnan(mins[p]) || record.latency_ms[p] < mins[p])
                mins[p] = record.latency_ms[p];
        }
    }
}

float
Dataset::label(int record, int platform) const
{
    const ProgramRecord &rec = records.at(static_cast<size_t>(record));
    if (!rec.hasLabel(static_cast<size_t>(platform)))
        return std::numeric_limits<float>::quiet_NaN();
    const float min_lat =
        groups.at(rec.group).min_latency_ms.at(
            static_cast<size_t>(platform));
    return min_lat / rec.latency_ms[static_cast<size_t>(platform)];
}

void
Dataset::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        TLP_FATAL("cannot open for write: ", path);
    save(os);
    TLP_CHECK(os.good(), "write failed: ", path);
}

void
Dataset::save(std::ostream &os) const
{
    BinaryWriter writer(os);
    writeHeader(writer, kMagic, kFormatVersion);
    writer.writePod<uint8_t>(is_gpu ? 1 : 0);
    writer.writePod<uint32_t>(static_cast<uint32_t>(platforms.size()));
    for (const auto &platform : platforms)
        writer.writeString(platform);
    writer.writePod<uint32_t>(static_cast<uint32_t>(groups.size()));
    for (const auto &group : groups) {
        group.subgraph->serialize(writer);
        writer.writeString(group.key);
        writer.writeVector(group.min_latency_ms);
    }
    writer.writePod<uint64_t>(records.size());
    for (const auto &record : records) {
        writer.writePod(record.group);
        record.seq.serialize(writer);
        writer.writeVector(record.latency_ms);
    }
    writer.writePod<uint32_t>(static_cast<uint32_t>(network_groups.size()));
    for (const auto &[network, groups_of] : network_groups) {
        writer.writeString(network);
        writer.writePod<uint32_t>(static_cast<uint32_t>(groups_of.size()));
        for (const auto &[group, weight] : groups_of) {
            writer.writePod<int32_t>(group);
            writer.writePod<int32_t>(weight);
        }
    }
    writer.writePod<uint32_t>(static_cast<uint32_t>(failure_counts.size()));
    for (const auto &[status, count] : failure_counts) {
        writer.writeString(status);
        writer.writePod<int64_t>(count);
    }
    TLP_CHECK(writer.good(), "dataset write failed");
}

Dataset
Dataset::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        TLP_FATAL("cannot open for read: ", path);
    return load(is);
}

Dataset
Dataset::load(std::istream &is)
{
    BinaryReader reader(is);
    const uint32_t version = readHeader(reader, kMagic, kFormatVersion);

    Dataset dataset;
    dataset.is_gpu = reader.readPod<uint8_t>() != 0;
    const auto num_platforms = reader.readPod<uint32_t>();
    for (uint32_t i = 0; i < num_platforms; ++i)
        dataset.platforms.push_back(reader.readString());
    const auto num_groups = reader.readPod<uint32_t>();
    for (uint32_t i = 0; i < num_groups; ++i) {
        SubgraphGroup group;
        group.subgraph = std::make_shared<ir::Subgraph>(
            ir::Subgraph::deserialize(reader));
        group.key = reader.readString();
        group.min_latency_ms = reader.readVector<float>();
        dataset.groups.push_back(std::move(group));
    }
    const auto num_records = reader.readPod<uint64_t>();
    dataset.records.reserve(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
        ProgramRecord record;
        record.group = reader.readPod<uint32_t>();
        record.seq = sched::PrimitiveSeq::deserialize(reader);
        record.latency_ms = reader.readVector<float>();
        dataset.records.push_back(std::move(record));
    }
    const auto num_networks = reader.readPod<uint32_t>();
    for (uint32_t i = 0; i < num_networks; ++i) {
        const std::string network = reader.readString();
        const auto count = reader.readPod<uint32_t>();
        auto &entries = dataset.network_groups[network];
        for (uint32_t j = 0; j < count; ++j) {
            const auto group = reader.readPod<int32_t>();
            const auto weight = reader.readPod<int32_t>();
            entries.push_back({group, weight});
        }
    }
    if (version >= 2) {
        const auto num_statuses = reader.readPod<uint32_t>();
        for (uint32_t i = 0; i < num_statuses; ++i) {
            const std::string status = reader.readString();
            dataset.failure_counts[status] = reader.readPod<int64_t>();
        }
    }
    return dataset;
}

std::map<int, int64_t>
Dataset::seqLenHistogram() const
{
    std::map<int, int64_t> histogram;
    for (const auto &record : records)
        histogram[record.seq.size()] += 1;
    return histogram;
}

std::map<std::string, int>
Dataset::maxEmbeddingSizes() const
{
    std::map<std::string, int> sizes;
    for (const auto &record : records) {
        for (const auto &prim : record.seq.prims) {
            const std::string name = sched::primKindName(prim.kind);
            const int width = sched::kNumPrimKinds + prim.numParams();
            auto it = sizes.find(name);
            if (it == sizes.end() || it->second < width)
                sizes[name] = width;
        }
    }
    return sizes;
}

double
Dataset::repetitionRate() const
{
    if (records.empty())
        return 0.0;
    std::set<uint64_t> distinct;
    for (const auto &record : records)
        distinct.insert(record.seq.hash());
    const double repeats = static_cast<double>(records.size()) -
                           static_cast<double>(distinct.size());
    return repeats / static_cast<double>(records.size());
}

} // namespace tlp::data
