#include "dataset/metrics.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace tlp::data {

namespace {

/** Best (lowest) latency among the top-k scored records of a group. */
double
bestOfTopK(const Dataset &dataset,
           const std::vector<std::pair<double, int>> &scored, int platform,
           int k)
{
    double best = std::numeric_limits<double>::infinity();
    const int count = std::min<int>(k, static_cast<int>(scored.size()));
    for (int i = 0; i < count; ++i) {
        const auto &record = dataset.records.at(
            static_cast<size_t>(scored[static_cast<size_t>(i)].second));
        if (record.hasLabel(static_cast<size_t>(platform))) {
            best = std::min(best,
                            static_cast<double>(
                                record.latency_ms[static_cast<size_t>(
                                    platform)]));
        }
    }
    return best;
}

} // namespace

double
topKScore(const Dataset &dataset,
          const std::vector<std::string> &test_networks, int platform,
          const std::vector<int> &test_records,
          const std::vector<double> &scores, int k)
{
    TLP_CHECK(test_records.size() == scores.size(),
              "scores/records size mismatch");

    // Group -> (score, record) sorted descending by score.
    std::map<int, std::vector<std::pair<double, int>>> by_group;
    for (size_t i = 0; i < test_records.size(); ++i) {
        const int record = test_records[i];
        const int group =
            static_cast<int>(dataset.records.at(
                static_cast<size_t>(record)).group);
        by_group[group].push_back({scores[i], record});
    }
    for (auto &[group, scored] : by_group)
        std::sort(scored.begin(), scored.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });

    double numerator = 0.0;
    double denominator = 0.0;
    for (const auto &network : test_networks) {
        auto it = dataset.network_groups.find(network);
        if (it == dataset.network_groups.end())
            continue;
        for (const auto &[group, weight] : it->second) {
            auto scored_it = by_group.find(group);
            if (scored_it == by_group.end())
                continue;
            const float min_lat =
                dataset.groups.at(static_cast<size_t>(group))
                    .min_latency_ms.at(static_cast<size_t>(platform));
            if (std::isnan(min_lat))
                continue;
            const double chosen =
                bestOfTopK(dataset, scored_it->second, platform, k);
            if (!std::isfinite(chosen))
                continue;
            numerator += static_cast<double>(min_lat) * weight;
            denominator += chosen * weight;
        }
    }
    if (denominator <= 0.0)
        return 0.0;
    return numerator / denominator;
}

TopKPair
topKScores(const Dataset &dataset,
           const std::vector<std::string> &test_networks, int platform,
           const std::vector<int> &test_records,
           const std::vector<double> &scores)
{
    TopKPair pair;
    pair.top1 = topKScore(dataset, test_networks, platform, test_records,
                          scores, 1);
    pair.top5 = topKScore(dataset, test_networks, platform, test_records,
                          scores, 5);
    return pair;
}

} // namespace tlp::data
