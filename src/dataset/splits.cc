#include "dataset/splits.h"

#include <algorithm>
#include <set>

#include "features/ansor_features.h"
#include "schedule/lower.h"
#include "schedule/state.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace tlp::data {

Split
makeSplit(const Dataset &dataset,
          const std::vector<std::string> &test_networks,
          double valid_fraction, uint64_t seed)
{
    std::set<int> test_groups;
    for (const auto &network : test_networks) {
        auto it = dataset.network_groups.find(network);
        if (it == dataset.network_groups.end())
            continue;
        for (const auto &[group, weight] : it->second)
            test_groups.insert(group);
    }

    Split split;
    split.test_groups.assign(test_groups.begin(), test_groups.end());

    std::vector<int> pool;
    for (size_t r = 0; r < dataset.records.size(); ++r) {
        const int group = static_cast<int>(dataset.records[r].group);
        if (test_groups.count(group)) {
            split.test_records.push_back(static_cast<int>(r));
        } else {
            pool.push_back(static_cast<int>(r));
        }
    }

    Rng rng(seed);
    rng.shuffle(pool);
    const size_t valid_count = static_cast<size_t>(
        static_cast<double>(pool.size()) * valid_fraction);
    split.valid_records.assign(pool.begin(),
                               pool.begin() +
                                   static_cast<long>(valid_count));
    split.train_records.assign(pool.begin() +
                                   static_cast<long>(valid_count),
                               pool.end());
    return split;
}

LabeledSet
buildTlpSet(const Dataset &dataset, const std::vector<int> &records,
            const std::vector<int> &platforms,
            const feat::TlpFeatureOptions &options)
{
    LabeledSet set;
    set.rows = static_cast<int>(records.size());
    set.feature_dim = options.seq_len * options.emb_size;
    set.num_tasks = static_cast<int>(platforms.size());
    const size_t dim = static_cast<size_t>(set.feature_dim);
    set.features.resize(static_cast<size_t>(set.rows) * dim);
    set.labels.reserve(static_cast<size_t>(set.rows) *
                       platforms.size());
    set.groups.reserve(records.size());

    // Feature rows are independent (extractTlpFeatures reads only the
    // PrimitiveSeq) and disjoint: extract them in parallel.
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(records.size()), 1,
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                const auto &record = dataset.records.at(
                    static_cast<size_t>(records[static_cast<size_t>(i)]));
                const auto features =
                    feat::extractTlpFeatures(record.seq, options);
                std::copy(features.begin(), features.end(),
                          set.features.begin() +
                              static_cast<size_t>(i) * dim);
            }
        });

    for (int r : records) {
        const auto &record = dataset.records.at(static_cast<size_t>(r));
        for (int p : platforms)
            set.labels.push_back(dataset.label(r, p));
        set.groups.push_back(static_cast<int>(record.group));
    }
    return set;
}

LabeledSet
buildAnsorSet(const Dataset &dataset, const std::vector<int> &records,
              int platform)
{
    LabeledSet set;
    set.rows = static_cast<int>(records.size());
    set.feature_dim = feat::kAnsorFeatureSize;
    set.num_tasks = 1;
    set.features.reserve(static_cast<size_t>(set.rows) *
                         feat::kAnsorFeatureSize);

    for (int r : records) {
        const auto &record = dataset.records.at(static_cast<size_t>(r));
        const auto &group = dataset.groups.at(record.group);
        const sched::State state = sched::replaySteps(
            group.subgraph, dataset.is_gpu, record.seq);
        const auto features =
            feat::extractAnsorFeatures(sched::lower(state));
        set.features.insert(set.features.end(), features.begin(),
                            features.end());
        set.labels.push_back(dataset.label(r, platform));
        set.groups.push_back(static_cast<int>(record.group));
    }
    return set;
}

} // namespace tlp::data
