/**
 * @file
 * Dataset-based evaluation metrics (paper Sec. 6.1).
 *
 * The top-k score of a cost model on a platform:
 *
 *   top-k = sum_m sum_s min_latency(m,s) * weight(m,s)
 *         / sum_m sum_s min_i<=k latency(m,s,i) * weight(m,s)
 *
 * where latency(m,s,i) is the latency of the candidate ranked i-th by
 * the model among subgraph s's programs. 1.0 means the model's top-k
 * always contains the true best program.
 */
#pragma once

#include "dataset/dataset.h"

namespace tlp::data {

/**
 * Top-k score over @p test_networks on @p platform.
 *
 * @param test_records record indices the scores refer to
 * @param scores       model scores aligned with @p test_records
 *                     (higher = predicted faster)
 */
double topKScore(const Dataset &dataset,
                 const std::vector<std::string> &test_networks,
                 int platform, const std::vector<int> &test_records,
                 const std::vector<double> &scores, int k);

/** Convenience: top-1 and top-5 in one pass. */
struct TopKPair
{
    double top1 = 0.0;
    double top5 = 0.0;
};

TopKPair topKScores(const Dataset &dataset,
                    const std::vector<std::string> &test_networks,
                    int platform, const std::vector<int> &test_records,
                    const std::vector<double> &scores);

} // namespace tlp::data
