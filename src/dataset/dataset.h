/**
 * @file
 * The tensor-program dataset (our TenSet stand-in).
 *
 * A Dataset holds deduplicated subgraph groups, the networks that use
 * them (with occurrence weights), and program records: (group, schedule
 * primitive sequence, per-platform latency labels). Labels are aligned
 * with the dataset's platform list; NaN marks a missing label, which is
 * how MTL-TLP's partially labeled tuples (Sec. 5.2) are represented.
 */
#pragma once

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "ir/subgraph.h"
#include "schedule/primitive.h"
#include "support/result.h"
#include "support/serialize.h"

namespace tlp::data {

/** One tensor program and its labels. */
struct ProgramRecord
{
    uint32_t group = 0;               ///< index into Dataset::groups
    sched::PrimitiveSeq seq;
    /** latency_ms[i] on Dataset::platforms[i]; NaN = not measured. */
    std::vector<float> latency_ms;

    bool hasLabel(size_t platform) const
    {
        return platform < latency_ms.size() &&
               !std::isnan(latency_ms[platform]);
    }
};

/** A deduplicated subgraph with per-platform minimum latencies. */
struct SubgraphGroup
{
    ir::SubgraphPtr subgraph;
    std::string key;
    /** min over records per platform (the label normalizer). */
    std::vector<float> min_latency_ms;
};

/** How a dataset file is read back (see Dataset::tryLoad). */
struct LoadOptions
{
    /**
     * Skip corrupt record chunks / trailing sections instead of failing:
     * every record preceding the first corruption loads bit-identically,
     * later intact chunks are also kept, and the per-class tallies land
     * in Dataset::corruption_counts. The platform and group sections
     * must still be intact — without them records are uninterpretable.
     */
    bool salvage = false;
    /**
     * Verify the per-section CRC32s (default). Benches switch this off
     * to measure the checksum cost; leave it on everywhere else.
     */
    bool verify_checksums = true;
};

/** The dataset proper. */
class Dataset
{
  public:
    /** On-disk header magic, "TLPD" — the artifact audit
     *  (src/artifact) keys format detection on it. */
    static constexpr uint32_t kMagic = 0x544c5044;

    /**
     * Current on-disk format version (header version of save()).
     * v3 wraps everything in CRC32-checksummed sections; v2 (flat
     * stream) is still readable, v1 gets a clean versioned error.
     */
    static constexpr uint32_t kFormatVersion = 3;

    /** Oldest format version load() still understands. */
    static constexpr uint32_t kMinFormatVersion = 2;

    /** Hardware platform names, defining the label axes. */
    std::vector<std::string> platforms;
    /** True when schedules were generated with the GPU sketch rules. */
    bool is_gpu = false;

    std::vector<SubgraphGroup> groups;
    std::vector<ProgramRecord> records;
    /** network name -> (group index, occurrence weight). */
    std::map<std::string, std::vector<std::pair<int, int>>> network_groups;
    /**
     * Measurement-campaign failure counts by class name (e.g.
     * "timeout"); failed measurements leave NaN labels in the records.
     */
    std::map<std::string, int64_t> failure_counts;
    /**
     * Corruption tallies from the last salvage load of this object, by
     * class name (e.g. "records_crc", "truncated"). Describes the file
     * the dataset came from, not the data itself, so save() does not
     * persist it.
     */
    std::map<std::string, int64_t> corruption_counts;

    /** Index of @p platform; fatal when absent. */
    int platformIndex(const std::string &platform) const;

    /** Indices of records belonging to @p group. */
    std::vector<int> recordsOfGroup(int group) const;

    /** Recompute per-group minimum latencies from the records. */
    void refreshMinLatencies();

    /**
     * Normalized label of record @p r on platform @p p:
     * min_latency / latency in (0, 1]; NaN when unlabeled.
     */
    float label(int record, int platform) const;

    /** Save atomically (write-tmp-then-rename); fatal on failure. */
    void save(const std::string &path) const;
    /** Load; fatal on any error (legacy convenience over tryLoad). */
    static Dataset load(const std::string &path);

    /** Stream variants, for embedding a dataset in a larger file. */
    void save(std::ostream &os) const;
    static Dataset load(std::istream &is);

    /** Save atomically, reporting failure instead of dying. */
    Status trySave(const std::string &path) const;

    /**
     * Load with recoverable errors: corruption, truncation, version
     * skew, and I/O failures come back as a Status instead of killing
     * the process. With options.salvage, corrupt record chunks are
     * skipped and counted in corruption_counts.
     */
    static Result<Dataset> tryLoad(const std::string &path,
                                   const LoadOptions &options = {});
    static Result<Dataset> tryLoad(std::istream &is,
                                   const LoadOptions &options = {});

    // --- statistics (paper Fig. 6, Table 1, Sec. 4.3) ---

    /** Histogram of primitive-sequence lengths. */
    std::map<int, int64_t> seqLenHistogram() const;

    /** Max embedding size per primitive kind (paper Table 1). */
    std::map<std::string, int> maxEmbeddingSizes() const;

    /** Fraction of records whose sequence duplicates another (Sec 4.3). */
    double repetitionRate() const;
};

} // namespace tlp::data
