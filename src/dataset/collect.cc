#include "dataset/collect.h"

#include <limits>
#include <map>

#include "hwmodel/measurer.h"
#include "ir/model_zoo.h"
#include "ir/partition.h"
#include "schedule/lower.h"
#include "sketch/policy.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace tlp::data {

Dataset
collectDataset(const CollectOptions &options)
{
    TLP_CHECK(!options.networks.empty(), "no networks to collect");
    TLP_CHECK(!options.platforms.empty(), "no platforms to collect");

    Dataset dataset;
    dataset.platforms = options.platforms;
    dataset.is_gpu = options.is_gpu;

    std::vector<hw::Measurer> measurers;
    for (const auto &platform : options.platforms) {
        hw::MeasureOptions measure_options;
        measure_options.noise_std = options.measure_noise;
        measure_options.faults = options.faults;
        measure_options.max_retries = options.measure_retries;
        measurers.emplace_back(hw::HardwarePlatform::preset(platform),
                               measure_options, options.seed);
    }

    Rng rng(options.seed);
    std::map<std::string, int> group_of_key;

    for (const auto &network : options.networks) {
        const ir::Workload workload =
            ir::partitionGraph(ir::buildNetwork(network));
        auto &network_entry = dataset.network_groups[network];

        for (size_t s = 0; s < workload.subgraphs.size(); ++s) {
            const auto &subgraph = workload.subgraphs[s];
            int group_index;
            auto it = group_of_key.find(subgraph->key());
            if (it != group_of_key.end()) {
                group_index = it->second;
            } else {
                group_index = static_cast<int>(dataset.groups.size());
                group_of_key[subgraph->key()] = group_index;
                SubgraphGroup group;
                group.subgraph = subgraph;
                group.key = subgraph->key();
                dataset.groups.push_back(std::move(group));

                // Sample and label programs for the new group.
                sketch::SchedulePolicy policy(subgraph, options.is_gpu);
                auto population = policy.sampleInitPopulation(
                    options.programs_per_subgraph, rng);
                // Lower candidates in parallel (lowering is a pure
                // function of the State); measurement stays sequential
                // below because the per-platform noise streams are
                // order-sensitive and checkpointable.
                std::vector<sched::LoweredNest> nests(population.size());
                ThreadPool::global().parallelFor(
                    0, static_cast<int64_t>(population.size()), 1,
                    [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                            nests[static_cast<size_t>(i)] = sched::lower(
                                population[static_cast<size_t>(i)]);
                        }
                    });
                for (size_t c = 0; c < population.size(); ++c) {
                    const auto &state = population[c];
                    ProgramRecord record;
                    record.group = static_cast<uint32_t>(group_index);
                    record.seq = state.steps();
                    const auto &nest = nests[c];
                    record.latency_ms.reserve(measurers.size());
                    for (auto &measurer : measurers) {
                        // Failed measurements become NaN labels — the
                        // same representation as MTL's partially labeled
                        // tuples, so downstream losses skip them.
                        const auto result = measurer.measure(nest);
                        record.latency_ms.push_back(
                            result.ok() ? static_cast<float>(
                                              result.latency_ms)
                                        : std::numeric_limits<
                                              float>::quiet_NaN());
                        if (!result.ok()) {
                            dataset.failure_counts[hw::measureStatusName(
                                result.status)] += 1;
                        }
                    }
                    dataset.records.push_back(std::move(record));
                }
            }
            network_entry.push_back(
                {group_index, workload.weights[s]});
        }
    }

    dataset.refreshMinLatencies();
    return dataset;
}

} // namespace tlp::data
