#include "artifact/audit.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dataset/dataset.h"
#include "models/snapshot.h"
#include "models/supervisor.h"
#include "support/logging.h"
#include "support/serialize.h"
#include "tuner/session.h"

namespace tlp::artifact {

namespace fs = std::filesystem;

namespace {

/** True for "<stem>.quarantined.<digits>" — the evidence shape
 *  quarantineArtifact produces. */
bool
isQuarantineEvidenceName(const std::string &name)
{
    const size_t mark = name.rfind(".quarantined.");
    if (mark == std::string::npos || mark == 0)
        return false;
    const std::string tail = name.substr(mark + 13);
    return !tail.empty() &&
           std::all_of(tail.begin(), tail.end(), [](unsigned char c) {
               return c >= '0' && c <= '9';
           });
}

/** First four bytes as the native-endian u32 the writers emit; false
 *  when the file is shorter than a header magic. */
bool
readMagic(std::istream &is, uint32_t &magic)
{
    char raw[4];
    is.read(raw, sizeof(raw));
    if (is.gcount() != sizeof(raw))
        return false;
    std::memcpy(&magic, raw, sizeof(magic));
    return true;
}

/** Snapshot verifier: the header does not name the architecture (the
 *  arch byte lives inside the CONF section), so try the TLP loader and
 *  fall back to the MLP one when the file is well-formed but the other
 *  arch. Buffers the stream: each loader needs a fresh read. */
Status
verifySnapshot(std::istream &is)
{
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string bytes = buffer.str();

    std::istringstream as_tlp(bytes);
    const auto tlp = model::loadTlpSnapshot(as_tlp);
    if (tlp.ok() || tlp.status().code() != ErrorCode::Invalid)
        return tlp.status();
    std::istringstream as_mlp(bytes);
    return model::loadMlpSnapshot(as_mlp).status();
}

/** Memo verifier: header + fingerprint frame, then the embedded
 *  dataset. Deliberately does NOT compare the fingerprint — a stale
 *  memo is a cache miss, not damage. */
Status
verifyBenchMemo(std::istream &is)
{
    const Status header = guardedParse([&] {
        BinaryReader reader(is);
        readHeader(reader, kBenchMemoMagic, kBenchMemoVersion,
                   kBenchMemoVersion);
        (void)reader.readPod<uint64_t>();   // collection fingerprint
    });
    if (!header.ok())
        return header;
    return data::Dataset::tryLoad(is).status();
}

/** Curve files are text; structural integrity is the header line. */
Status
verifyCurve(std::istream &is)
{
    std::string first;
    std::getline(is, first);
    if (first != kCurveHeader) {
        return Status::error(ErrorCode::Corrupt,
                             "curve file does not start with '" +
                                 std::string(kCurveHeader) + "'");
    }
    return Status();
}

ArtifactState
stateFromStatus(const Status &status)
{
    if (status.ok())
        return ArtifactState::Intact;
    if (status.code() == ErrorCode::VersionSkew)
        return ArtifactState::VersionSkew;
    return ArtifactState::Corrupt;
}

} // namespace

const char *
artifactKindName(ArtifactKind kind)
{
    switch (kind) {
      case ArtifactKind::Unknown:          return "unknown";
      case ArtifactKind::Dataset:          return "dataset";
      case ArtifactKind::Snapshot:         return "snapshot";
      case ArtifactKind::TuningCheckpoint: return "tuning-checkpoint";
      case ArtifactKind::TrainCheckpoint:  return "training-checkpoint";
      case ArtifactKind::BenchMemo:        return "bench-memo";
      case ArtifactKind::Curve:            return "curve";
    }
    return "unknown";
}

const char *
artifactStateName(ArtifactState state)
{
    switch (state) {
      case ArtifactState::Intact:             return "intact";
      case ArtifactState::VersionSkew:        return "version-skew";
      case ArtifactState::Corrupt:            return "corrupt";
      case ArtifactState::StaleTemp:          return "stale-temp";
      case ArtifactState::QuarantineEvidence:
          return "quarantine-evidence";
      case ArtifactState::Unrecognized:       return "unrecognized";
    }
    return "unrecognized";
}

ArtifactKind
kindFromMagic(uint32_t magic)
{
    if (magic == data::Dataset::kMagic)
        return ArtifactKind::Dataset;
    if (magic == model::kSnapshotMagic)
        return ArtifactKind::Snapshot;
    if (magic == tune::kSessionCheckpointMagic)
        return ArtifactKind::TuningCheckpoint;
    if (magic == model::kTrainCheckpointMagic)
        return ArtifactKind::TrainCheckpoint;
    if (magic == kBenchMemoMagic)
        return ArtifactKind::BenchMemo;
    return ArtifactKind::Unknown;
}

ArtifactKind
kindFromName(const std::string &name)
{
    const auto has_suffix = [&](const char *suffix) {
        const size_t n = std::strlen(suffix);
        return name.size() > n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (has_suffix(".ckpt"))
        return ArtifactKind::TuningCheckpoint;
    if (has_suffix(".snap"))
        return ArtifactKind::Snapshot;
    if (has_suffix(".tlpd"))
        return ArtifactKind::Dataset;
    if (has_suffix(".curve"))
        return ArtifactKind::Curve;
    return ArtifactKind::Unknown;
}

Status
verifyArtifact(ArtifactKind kind, std::istream &is)
{
    switch (kind) {
      case ArtifactKind::Dataset:
        return data::Dataset::tryLoad(is).status();
      case ArtifactKind::Snapshot:
        return verifySnapshot(is);
      case ArtifactKind::TuningCheckpoint:
        return tune::verifyCheckpoint(is);
      case ArtifactKind::TrainCheckpoint:
        return model::verifyTrainCheckpoint(is);
      case ArtifactKind::BenchMemo:
        return verifyBenchMemo(is);
      case ArtifactKind::Curve:
        return verifyCurve(is);
      case ArtifactKind::Unknown:
        break;
    }
    return Status::error(ErrorCode::Invalid,
                         "not a recognized TLP artifact");
}

VerifyOutcome
verifyArtifactFile(const std::string &path)
{
    VerifyOutcome outcome;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        outcome.status = Status::error(ErrorCode::IoError,
                                       "cannot open for read: " + path);
        return outcome;
    }
    uint32_t magic = 0;
    if (readMagic(is, magic))
        outcome.kind = kindFromMagic(magic);
    if (outcome.kind == ArtifactKind::Unknown) {
        // Magic destroyed (or text format): fall back to the name so a
        // garbage-filled checkpoint still reports as a damaged
        // checkpoint instead of "not ours".
        outcome.kind =
            kindFromName(fs::path(path).filename().string());
    }
    if (outcome.kind == ArtifactKind::Unknown) {
        outcome.status =
            Status::error(ErrorCode::Invalid,
                          "not a recognized TLP artifact: " + path);
        return outcome;
    }
    is.clear();
    is.seekg(0);
    outcome.status = verifyArtifact(outcome.kind, is);
    return outcome;
}

ArtifactRecord
auditFile(const std::string &path)
{
    ArtifactRecord record;
    record.name = fs::path(path).filename().string();
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    record.bytes = ec ? 0 : static_cast<uint64_t>(size);

    // Name classifiers first: evidence and debris are states, not
    // formats — their content is expected to be torn.
    if (isQuarantineEvidenceName(record.name)) {
        record.state = ArtifactState::QuarantineEvidence;
        return record;
    }
    if (isAtomicTempName(record.name)) {
        record.state = ArtifactState::StaleTemp;
        return record;
    }

    const VerifyOutcome outcome = verifyArtifactFile(path);
    record.kind = outcome.kind;
    if (outcome.kind == ArtifactKind::Unknown) {
        record.state = ArtifactState::Unrecognized;
        return record;
    }
    record.state = stateFromStatus(outcome.status);
    if (!outcome.status.ok())
        record.detail = outcome.status.toString();
    return record;
}

AuditReport
auditDirectory(const std::string &dir)
{
    AuditReport report;
    report.dir = dir;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return report;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(dir, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file(ec))
            names.push_back(it->path().filename().string());
    }
    std::sort(names.begin(), names.end());
    report.records.reserve(names.size());
    for (const std::string &name : names) {
        ArtifactRecord record = auditFile(dir + "/" + name);
        switch (record.state) {
          case ArtifactState::Intact:      report.intact += 1;       break;
          case ArtifactState::VersionSkew: report.version_skew += 1; break;
          case ArtifactState::Corrupt:     report.corrupt += 1;      break;
          case ArtifactState::StaleTemp:   report.stale_temps += 1;  break;
          case ArtifactState::QuarantineEvidence:
            report.quarantine_evidence += 1;
            break;
          case ArtifactState::Unrecognized:
            report.unrecognized += 1;
            break;
        }
        report.records.push_back(std::move(record));
    }
    return report;
}

std::string
formatAuditReport(const AuditReport &report)
{
    std::ostringstream os;
    os << "# tlp_fsck report v1\n";
    os << "dir " << report.dir << "\n";
    os << "files " << report.records.size() << "\n";
    for (const ArtifactRecord &record : report.records) {
        os << "file " << record.name << " kind "
           << artifactKindName(record.kind) << " state "
           << artifactStateName(record.state) << " bytes "
           << record.bytes;
        if (!record.detail.empty())
            os << " detail " << record.detail;
        os << "\n";
    }
    os << "summary intact " << report.intact << " version-skew "
       << report.version_skew << " corrupt " << report.corrupt
       << " stale-temp " << report.stale_temps
       << " quarantine-evidence " << report.quarantine_evidence
       << " unrecognized " << report.unrecognized << "\n";
    return os.str();
}

QuarantineAction
quarantineDamaged(const std::string &path, int max_generations)
{
    QuarantineAction action;
    Result<std::string> jail = quarantineArtifact(path, max_generations);
    if (jail.ok()) {
        action.jail = jail.take();
        return action;
    }
    // Last resort: a damaged file that cannot be renamed aside must
    // still never be re-adopted; unlinking loses this one piece of
    // evidence but all earlier generations stay untouched.
    warn("cannot quarantine ", path, " (", jail.status().toString(),
         "); removing it instead");
    std::error_code ec;
    action.removed = fs::remove(path, ec) && !ec;
    return action;
}

int
sweepDebris(const std::string &dir)
{
    return sweepStaleTemps(dir);
}

int
sweepDebrisFor(const std::string &artifact_path)
{
    return sweepStaleTempsFor(artifact_path);
}

RepairReport
repairDirectory(const std::string &dir, const RepairOptions &options)
{
    RepairReport out;
    const AuditReport audit = auditDirectory(dir);

    // Debris first: one directory-wide sweep (the audit already proved
    // we own every temp name here), with per-file action lines so the
    // report stays reviewable.
    for (const ArtifactRecord &record : audit.records) {
        if (record.state == ArtifactState::StaleTemp)
            out.actions.push_back("sweep " + record.name);
    }
    out.swept = sweepDebris(dir);

    for (const ArtifactRecord &record : audit.records) {
        if (record.state != ArtifactState::Corrupt &&
            record.state != ArtifactState::VersionSkew) {
            continue;
        }
        const std::string path = dir + "/" + record.name;

        if (record.kind == ArtifactKind::Dataset &&
            options.salvage_datasets) {
            data::LoadOptions salvage;
            salvage.salvage = true;
            Result<data::Dataset> rebuilt =
                data::Dataset::tryLoad(path, salvage);
            if (rebuilt.ok()) {
                const QuarantineAction evidence =
                    quarantineDamaged(path, options.max_generations);
                if (!evidence.ok()) {
                    out.failures += 1;
                    out.actions.push_back("quarantine-failed " +
                                          record.name);
                    continue;
                }
                const data::Dataset salvaged = rebuilt.take();
                const Status saved = salvaged.trySave(path);
                if (saved.ok()) {
                    out.salvaged_datasets += 1;
                    out.salvaged_records += static_cast<int64_t>(
                        salvaged.records.size());
                    out.actions.push_back(
                        "salvage " + record.name + " kept " +
                        std::to_string(salvaged.records.size()) +
                        " records, evidence " +
                        (evidence.removed
                             ? std::string("removed")
                             : fs::path(evidence.jail)
                                   .filename()
                                   .string()));
                } else {
                    // Evidence already renamed aside; the failed
                    // re-save cannot have damaged it.
                    out.failures += 1;
                    out.actions.push_back("salvage-failed " +
                                          record.name + ": " +
                                          saved.toString());
                }
                continue;
            }
            // Salvage impossible (header/meta sections gone): fall
            // through to plain quarantine.
        }

        const QuarantineAction action =
            quarantineDamaged(path, options.max_generations);
        if (!action.ok()) {
            out.failures += 1;
            out.actions.push_back("quarantine-failed " + record.name);
        } else {
            out.quarantined += 1;
            out.actions.push_back(
                "quarantine " + record.name + " -> " +
                (action.removed
                     ? std::string("removed")
                     : fs::path(action.jail).filename().string()));
        }
    }
    return out;
}

} // namespace tlp::artifact
