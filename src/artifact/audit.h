/**
 * @file
 * Artifact audit & repair: the scan→classify→repair layer behind the
 * `tlp_fsck` doctor and the service's crash recovery (DESIGN.md §15).
 *
 * Five checksummed artifact formats live on disk (DESIGN.md §8):
 * dataset ("TLPD"), model snapshot ("TLPW"), tuning checkpoint
 * ("TLPS"), training checkpoint ("TLPT"), and bench memo ("TLPM") —
 * plus the text curve files the service emits. This module is the one
 * place that knows how to recognize each format by magic, dispatch it
 * to its loader-grade verifier, and classify every file in a directory
 * into one of six states:
 *
 *   Intact             verifier accepted the file end to end
 *   VersionSkew        recognized format, version outside the range
 *   Corrupt            recognized (by magic or name) but damaged
 *   StaleTemp          "<stem>.tmp.<pid>.<seq>" atomic-write debris
 *   QuarantineEvidence "<stem>.quarantined.N" from an earlier repair
 *   Unrecognized       none of ours — never touched by repair
 *
 * Repair is strictly containment, built on the io_env primitives:
 * damaged files are renamed to the first free "*.quarantined.N"
 * (every generation of evidence kept), debris is swept, and corrupt
 * datasets are salvaged (intact records re-saved, the damaged original
 * kept as evidence). Repair never deletes a recognized artifact and
 * never writes bytes except through the atomicWriteFile seam, so an
 * injected fault during repair cannot make a directory worse.
 *
 * The service's recover() and the bench-memo regeneration route their
 * quarantine/sweep needs through here, so `tlp_fsck` and the runtime
 * can never disagree about what damage is or where evidence goes.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/io_env.h"
#include "support/result.h"

namespace tlp::artifact {

/** Bench memo file magic ("TLPM"). Defined here — not in bench/ — so
 *  the doctor can recognize memos without linking bench code;
 *  bench/bench_common.h aliases these. */
inline constexpr uint32_t kBenchMemoMagic = 0x544c504d;

/** Memo format version (v2: recoverable load + atomic write). */
inline constexpr uint32_t kBenchMemoVersion = 2;

/** First line of a service curve file (formatCurveFile). */
inline constexpr const char *kCurveHeader = "# tlp_serve curve v1";

/** Which on-disk artifact format a file carries. */
enum class ArtifactKind : uint8_t
{
    Unknown = 0,       ///< not one of ours
    Dataset,           ///< "TLPD" (data::Dataset)
    Snapshot,          ///< "TLPW" (model snapshot, TLP or MLP arch)
    TuningCheckpoint,  ///< "TLPS" (tune::TuningSession checkpoint)
    TrainCheckpoint,   ///< "TLPT" (model::TrainCheckpoint)
    BenchMemo,         ///< "TLPM" (fingerprint-stamped dataset cache)
    Curve,             ///< text curve file ("# tlp_serve curve v1")
};

/** Short stable name of @p kind, e.g. "tuning-checkpoint". */
const char *artifactKindName(ArtifactKind kind);

/** Audit verdict for one file. */
enum class ArtifactState : uint8_t
{
    Intact = 0,          ///< verifier accepted the whole file
    VersionSkew,         ///< known format, unsupported version
    Corrupt,             ///< known format (or named like one), damaged
    StaleTemp,           ///< atomic-write temp debris
    QuarantineEvidence,  ///< *.quarantined.N from an earlier repair
    Unrecognized,        ///< none of ours; audit reports, repair skips
};

/** Short stable name of @p state, e.g. "stale-temp". */
const char *artifactStateName(ArtifactState state);

/** One audited file. */
struct ArtifactRecord
{
    std::string name;   ///< filename (no directory)
    ArtifactKind kind = ArtifactKind::Unknown;
    ArtifactState state = ArtifactState::Unrecognized;
    uint64_t bytes = 0;
    /** Verifier failure message for damaged files, empty otherwise. */
    std::string detail;
};

/** Deterministic directory audit: records sorted by name. */
struct AuditReport
{
    std::string dir;
    std::vector<ArtifactRecord> records;
    int intact = 0;
    int version_skew = 0;
    int corrupt = 0;
    int stale_temps = 0;
    int quarantine_evidence = 0;
    int unrecognized = 0;

    /** True when repair has work: damage or debris present (existing
     *  quarantine evidence is history, not damage). */
    bool damaged() const
    {
        return version_skew + corrupt + stale_temps > 0;
    }
};

/** Map a header magic to its artifact kind (Unknown when alien). */
ArtifactKind kindFromMagic(uint32_t magic);

/** Extension fallback for files whose magic bytes are destroyed:
 *  ".ckpt" / ".snap" / ".tlpd" / ".curve" name our formats even when
 *  the header no longer does. Unknown otherwise. */
ArtifactKind kindFromName(const std::string &name);

/**
 * Verify one artifact payload of a known @p kind from @p is, using the
 * same loader-grade verifier a consumer would (Dataset::tryLoad,
 * snapshot load + either arch, verifyCheckpoint, verifyTrainCheckpoint,
 * memo header + embedded dataset; a memo's fingerprint staleness is a
 * cache miss, not damage, and is NOT checked here). Ok means the
 * consumer would accept the file structurally.
 */
Status verifyArtifact(ArtifactKind kind, std::istream &is);

/** detect-by-magic + verify for a single file: the engine behind
 *  `tune_workload --verify-checkpoint`. */
struct VerifyOutcome
{
    ArtifactKind kind = ArtifactKind::Unknown;
    Status status;
};
VerifyOutcome verifyArtifactFile(const std::string &path);

/** Classify + verify one file (name classifiers first, then magic,
 *  then the extension fallback). Never throws; unreadable files come
 *  back Corrupt/Unrecognized with the error in detail. */
ArtifactRecord auditFile(const std::string &path);

/** Audit every regular file directly under @p dir (sorted, counted).
 *  FATAL-free: a missing directory yields an empty report. */
AuditReport auditDirectory(const std::string &dir);

/** Render @p report as the deterministic "# tlp_fsck report v1" text
 *  (one line per file, then a summary line). */
std::string formatAuditReport(const AuditReport &report);

/** Repair policy. */
struct RepairOptions
{
    /** Re-save the intact records of a corrupt dataset (the damaged
     *  original is still quarantined as evidence). */
    bool salvage_datasets = true;
    /** Evidence generations to probe before refusing to quarantine. */
    int max_generations = kQuarantineMaxGenerations;
};

/** What repairDirectory() did, in deterministic (name-sorted) order. */
struct RepairReport
{
    int quarantined = 0;         ///< damaged files renamed aside
    int swept = 0;               ///< stale temps unlinked
    int salvaged_datasets = 0;   ///< datasets rebuilt from intact records
    int64_t salvaged_records = 0;///< records surviving all salvages
    int failures = 0;            ///< repairs that could not complete
    /** One "<verb> <file> ..." line per action taken. */
    std::vector<std::string> actions;
};

/**
 * Contain every damaged file under @p dir: sweep debris, quarantine
 * Corrupt/VersionSkew artifacts to "*.quarantined.N", salvage datasets
 * when enabled. Unrecognized files and existing evidence are never
 * touched. Idempotent: a second run finds nothing to do.
 */
RepairReport repairDirectory(const std::string &dir,
                             const RepairOptions &options = {});

/** How quarantineDamaged() disposed of a file. */
struct QuarantineAction
{
    std::string jail;     ///< evidence path when the rename landed
    bool removed = false; ///< fallback: unlinked (rename impossible)

    bool ok() const { return !jail.empty() || removed; }
};

/**
 * The one quarantine-with-fallback policy (shared by the service's
 * recover(), the circuit breaker, and repairDirectory): rename @p path
 * to the first free "*.quarantined.N"; when no generation slot is
 * available or the rename fails, fall back to unlinking so a damaged
 * file can never be re-adopted. Existing evidence is never touched.
 */
QuarantineAction
quarantineDamaged(const std::string &path,
                  int max_generations = kQuarantineMaxGenerations);

/** Sweep "<name>.tmp.<pid>.<seq>" debris directly under @p dir (the
 *  io_env sweeper, re-exported so audit callers need one header). */
int sweepDebris(const std::string &dir);

/** Sweep debris of one artifact only — safe in shared directories
 *  like /tmp where a directory-wide sweep could race live writers. */
int sweepDebrisFor(const std::string &artifact_path);

} // namespace tlp::artifact
