#include "schedule/primitive.h"

#include <sstream>

#include "support/logging.h"
#include "support/rng.h"

namespace tlp::sched {

std::string
primKindName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::SP:   return "SP";
      case PrimKind::RE:   return "RE";
      case PrimKind::FU:   return "FU";
      case PrimKind::FSP:  return "FSP";
      case PrimKind::FFSP: return "FFSP";
      case PrimKind::CA:   return "CA";
      case PrimKind::CI:   return "CI";
      case PrimKind::CR:   return "CR";
      case PrimKind::CHW:  return "CHW";
      case PrimKind::CHR:  return "CHR";
      case PrimKind::RF:   return "RF";
      case PrimKind::AN:   return "AN";
      case PrimKind::PR:   return "PR";
      case PrimKind::SA:   return "SA";
      case PrimKind::NumKinds: break;
    }
    TLP_PANIC("unknown primitive kind");
}

std::string
primKindLongName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::SP:   return "split";
      case PrimKind::RE:   return "reorder";
      case PrimKind::FU:   return "fuse";
      case PrimKind::FSP:  return "follow_split";
      case PrimKind::FFSP: return "follow_fused_split";
      case PrimKind::CA:   return "compute_at";
      case PrimKind::CI:   return "compute_inline";
      case PrimKind::CR:   return "compute_root";
      case PrimKind::CHW:  return "cache_write";
      case PrimKind::CHR:  return "cache_read";
      case PrimKind::RF:   return "rfactor";
      case PrimKind::AN:   return "annotation";
      case PrimKind::PR:   return "pragma";
      case PrimKind::SA:   return "storage_align";
      case PrimKind::NumKinds: break;
    }
    TLP_PANIC("unknown primitive kind");
}

std::string
Primitive::toString() const
{
    std::ostringstream os;
    os << primKindName(kind) << '(';
    for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0)
            os << ", ";
        if (std::holds_alternative<int64_t>(params[i])) {
            os << std::get<int64_t>(params[i]);
        } else {
            os << '"' << std::get<std::string>(params[i]) << '"';
        }
    }
    os << ')';
    return os.str();
}

void
Primitive::serialize(BinaryWriter &writer) const
{
    writer.writePod<uint8_t>(static_cast<uint8_t>(kind));
    writer.writePod<uint32_t>(static_cast<uint32_t>(params.size()));
    for (const Param &param : params) {
        if (std::holds_alternative<int64_t>(param)) {
            writer.writePod<uint8_t>(0);
            writer.writePod(std::get<int64_t>(param));
        } else {
            writer.writePod<uint8_t>(1);
            writer.writeString(std::get<std::string>(param));
        }
    }
}

Primitive
Primitive::deserialize(BinaryReader &reader)
{
    Primitive prim;
    const auto raw_kind = reader.readPod<uint8_t>();
    if (raw_kind >= static_cast<uint8_t>(PrimKind::NumKinds)) {
        throw SerializeError(ErrorCode::Corrupt,
                             "invalid primitive kind " +
                                 std::to_string(raw_kind));
    }
    prim.kind = static_cast<PrimKind>(raw_kind);
    const auto count = reader.readPod<uint32_t>();
    // Every param costs >= 2 stream bytes; an inflated count cannot
    // reserve past the remaining input.
    if (count > reader.remaining() / 2) {
        throw SerializeError(ErrorCode::Truncated,
                             "primitive param count " +
                                 std::to_string(count) +
                                 " exceeds the remaining stream");
    }
    prim.params.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const auto tag = reader.readPod<uint8_t>();
        if (tag == 0) {
            prim.params.emplace_back(reader.readPod<int64_t>());
        } else {
            prim.params.emplace_back(reader.readString());
        }
    }
    return prim;
}

std::string
PrimitiveSeq::toString() const
{
    std::ostringstream os;
    for (const Primitive &prim : prims)
        os << prim.toString() << '\n';
    return os.str();
}

uint64_t
PrimitiveSeq::hash() const
{
    uint64_t h = 1469598103934665603ull;
    for (const Primitive &prim : prims) {
        h = hashCombine(h, static_cast<uint64_t>(prim.kind));
        for (const Param &param : prim.params) {
            if (std::holds_alternative<int64_t>(param)) {
                h = hashCombine(
                    h, static_cast<uint64_t>(std::get<int64_t>(param)));
            } else {
                const auto &name = std::get<std::string>(param);
                h = hashCombine(h, fnv1a(name.data(), name.size()));
            }
        }
    }
    return h;
}

void
PrimitiveSeq::serialize(BinaryWriter &writer) const
{
    writer.writePod<uint32_t>(static_cast<uint32_t>(prims.size()));
    for (const Primitive &prim : prims)
        prim.serialize(writer);
}

PrimitiveSeq
PrimitiveSeq::deserialize(BinaryReader &reader)
{
    PrimitiveSeq seq;
    const auto count = reader.readPod<uint32_t>();
    // Every primitive costs >= 5 stream bytes (kind + param count).
    if (count > reader.remaining() / 5) {
        throw SerializeError(ErrorCode::Truncated,
                             "primitive count " + std::to_string(count) +
                                 " exceeds the remaining stream");
    }
    seq.prims.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        seq.prims.push_back(Primitive::deserialize(reader));
    return seq;
}

std::string
annotationName(Annotation ann)
{
    switch (ann) {
      case Annotation::None:      return "none";
      case Annotation::Parallel:  return "parallel";
      case Annotation::Vectorize: return "vectorize";
      case Annotation::Unroll:    return "unroll";
      case Annotation::BlockX:    return "blockIdx.x";
      case Annotation::ThreadX:   return "threadIdx.x";
      case Annotation::VThread:   return "vthread";
    }
    TLP_PANIC("unknown annotation");
}

} // namespace tlp::sched
