/**
 * @file
 * Schedule state: the loop structure of a tensor program under
 * construction, mutated by schedule primitives.
 *
 * A State is created from a Subgraph (one stage per op, iterators from the
 * op's LoopSpec) and then transformed by the primitive application methods.
 * Every application appends the corresponding Primitive to `steps()`, so a
 * State always carries the exact primitive sequence that produced it — the
 * object TLP extracts features from. `replaySteps()` rebuilds a State from
 * a recorded sequence, which is the "reversible preprocessing" property
 * discussed in Sec. 4.1 of the paper.
 *
 * Iterators track *coverage*: which original (pre-transform) iterators a
 * loop spans and by how much. Coverage is what lets the hardware model
 * compute exact tile footprints after arbitrary split/fuse/reorder chains.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/loops.h"
#include "ir/subgraph.h"
#include "schedule/primitive.h"

namespace tlp::sched {

/** One loop of a stage after transforms. */
struct Iterator
{
    std::string name;
    int64_t extent = 1;
    bool is_reduction = false;
    Annotation ann = Annotation::None;
    /** (original iter index, covered extent), ordered outer -> inner. */
    std::vector<std::pair<int, int64_t>> coverage;
};

/** Where a stage's computation is placed. */
enum class ComputeLoc : uint8_t { Root, Inlined, At };

/** One op (or synthetic cache/rfactor op) in the schedule. */
struct Stage
{
    int op_index = -1;            ///< originating subgraph op
    std::string name;
    bool is_placeholder = false;
    bool is_cache_stage = false;  ///< cache_write/cache_read/rfactor stage
    std::vector<Iterator> iters;

    ComputeLoc loc = ComputeLoc::Root;
    int at_stage = -1;            ///< target stage index when loc == At
    int at_iter = -1;             ///< target iterator index when loc == At

    int64_t pragma_unroll = 0;    ///< auto_unroll_max_step value
    int64_t storage_align = 0;

    ir::LoopSpec spec;            ///< access patterns over original iters
    std::string out_buffer;
    /** Read-buffer renames installed by cache_read / rfactor. */
    std::map<std::string, std::string> redirects;

    /** Product of all iterator extents. */
    int64_t totalExtent() const;
};

/** A schedulable tensor program: stages + the primitive sequence so far. */
class State
{
  public:
    /** Build the naive program of @p subgraph. @p is_gpu selects GPU
     *  annotation legality (bindings) but not the primitive grammar. */
    State(ir::SubgraphPtr subgraph, bool is_gpu);

    const std::vector<Stage> &stages() const { return stages_; }
    const Stage &stage(int index) const;
    int numStages() const { return static_cast<int>(stages_.size()); }
    const PrimitiveSeq &steps() const { return steps_; }
    ir::SubgraphPtr subgraph() const { return subgraph_; }
    bool isGpu() const { return is_gpu_; }

    /** Index of the stage currently producing @p buffer; -1 if none. */
    int stageWriting(const std::string &buffer) const;

    // --- primitive applications (each records one step) ---

    /**
     * Split iterator @p iter of @p stage into 1 + lengths.size() loops;
     * @p lengths are the extents of the inner loops (innermost last), the
     * outer loop gets ceil(extent / prod(lengths)).
     * @return index of the outer resulting iterator.
     */
    int split(int stage, int iter, const std::vector<int64_t> &lengths);

    /** Split @p iter using the lengths of the @p src_step -th recorded
     *  step (which must be an SP step), truncated to @p n_split parts. */
    int followSplit(int stage, int iter, int src_step, int n_split);

    /** GPU variant: follow a fused split (same mechanics here). */
    int followFusedSplit(int stage, int iter, int src_step, int n_split);

    /** Permute all iterators of @p stage; @p order is a permutation of
     *  current iterator indices. */
    void reorder(int stage, const std::vector<int> &order);

    /** Fuse the contiguous iterators @p iters (ascending). @return index
     *  of the fused iterator. */
    int fuse(int stage, const std::vector<int> &iters);

    /** Nest @p stage's computation under iterator @p target_iter of
     *  @p target. */
    void computeAt(int stage, int target, int target_iter);

    /** Inline @p stage into its consumers. */
    void computeInline(int stage);

    /** Restore @p stage to root placement. */
    void computeRoot(int stage);

    /**
     * Insert a local accumulation stage for @p stage (must still have its
     * original iterators). The new stage takes over the reduction; the
     * original becomes a spatial copy-out.
     * @return index of the new cache stage.
     */
    int cacheWrite(int stage);

    /** Insert a staging (shared-memory) copy of @p producer's buffer for
     *  @p consumer. @return index of the new cache stage. */
    int cacheRead(int producer, int consumer);

    /**
     * Factor reduction iterator @p iter of @p stage into a partial stage
     * (iter becomes spatial there) plus a final reduction in @p stage.
     * @return index of the new partial stage.
     */
    int rfactor(int stage, int iter);

    /** Annotate an iterator (parallel / vectorize / unroll / bindings). */
    void annotate(int stage, int iter, Annotation ann);

    /** Set the auto_unroll_max_step pragma on @p stage. */
    void pragmaUnroll(int stage, int64_t max_step);

    /** Set a storage-alignment hint on @p stage. */
    void storageAlign(int stage, int64_t factor);

    /** Re-apply a recorded primitive (used by replaySteps). */
    void applyRecorded(const Primitive &prim);

  private:
    Stage &mutableStage(int index);
    Iterator &mutableIter(int stage, int iter);
    int doSplit(int stage, int iter, const std::vector<int64_t> &lengths);

    ir::SubgraphPtr subgraph_;
    bool is_gpu_ = false;
    std::vector<Stage> stages_;
    PrimitiveSeq steps_;
};

/** Rebuild a State by replaying @p seq on the naive program. */
State replaySteps(ir::SubgraphPtr subgraph, bool is_gpu,
                  const PrimitiveSeq &seq);

} // namespace tlp::sched
