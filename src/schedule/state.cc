#include "schedule/state.h"

#include <algorithm>

namespace tlp::sched {

namespace {

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Consume @p need points of coverage from the innermost end of @p cov. */
std::vector<std::pair<int, int64_t>>
consumeCoverage(std::vector<std::pair<int, int64_t>> &cov, int64_t need)
{
    std::vector<std::pair<int, int64_t>> taken;
    while (need > 1 && !cov.empty()) {
        auto &[orig, extent] = cov.back();
        const int64_t take = std::min(extent, need);
        taken.insert(taken.begin(), {orig, take});
        if (take >= extent) {
            cov.pop_back();
        } else {
            extent = ceilDiv(extent, take);
        }
        need = ceilDiv(need, take);
    }
    return taken;
}

ir::AccessDim
singleDim(int iter, int64_t coef = 1)
{
    ir::AccessDim dim;
    dim.terms.push_back({iter, coef});
    return dim;
}

} // namespace

int64_t
Stage::totalExtent() const
{
    int64_t total = 1;
    for (const Iterator &iter : iters)
        total *= iter.extent;
    return total;
}

State::State(ir::SubgraphPtr subgraph, bool is_gpu)
    : subgraph_(std::move(subgraph)), is_gpu_(is_gpu)
{
    TLP_CHECK(subgraph_ != nullptr, "null subgraph");
    const auto &ops = subgraph_->ops();
    stages_.reserve(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
        Stage stage;
        stage.op_index = static_cast<int>(i);
        stage.name = ir::bufferName(*subgraph_, static_cast<int>(i));
        stage.out_buffer = stage.name;
        stage.is_placeholder = ops[i].kind == ir::OpKind::Input ||
                               ops[i].kind == ir::OpKind::Constant;
        if (!stage.is_placeholder) {
            stage.spec = ir::describeLoops(*subgraph_, static_cast<int>(i));
            for (size_t j = 0; j < stage.spec.iters.size(); ++j) {
                const ir::IterSpec &spec_iter = stage.spec.iters[j];
                Iterator iter;
                iter.name = spec_iter.name;
                iter.extent = spec_iter.extent;
                iter.is_reduction = spec_iter.is_reduction;
                iter.coverage = {{static_cast<int>(j), spec_iter.extent}};
                stage.iters.push_back(std::move(iter));
            }
        }
        stages_.push_back(std::move(stage));
    }
}

const Stage &
State::stage(int index) const
{
    TLP_CHECK(index >= 0 && index < numStages(), "bad stage index ", index);
    return stages_[static_cast<size_t>(index)];
}

Stage &
State::mutableStage(int index)
{
    TLP_CHECK(index >= 0 && index < numStages(), "bad stage index ", index);
    return stages_[static_cast<size_t>(index)];
}

Iterator &
State::mutableIter(int stage_idx, int iter_idx)
{
    Stage &st = mutableStage(stage_idx);
    TLP_CHECK(iter_idx >= 0 &&
                  iter_idx < static_cast<int>(st.iters.size()),
              "bad iterator index ", iter_idx, " in stage ", st.name);
    return st.iters[static_cast<size_t>(iter_idx)];
}

int
State::stageWriting(const std::string &buffer) const
{
    for (int i = numStages() - 1; i >= 0; --i)
        if (stages_[static_cast<size_t>(i)].out_buffer == buffer)
            return i;
    return -1;
}

int
State::doSplit(int stage_idx, int iter_idx,
               const std::vector<int64_t> &lengths)
{
    TLP_CHECK(!lengths.empty(), "split needs at least one length");
    Stage &st = mutableStage(stage_idx);
    Iterator original = st.iters.at(static_cast<size_t>(iter_idx));

    int64_t inner_prod = 1;
    for (int64_t len : lengths) {
        TLP_CHECK(len > 0, "split length must be positive");
        inner_prod *= len;
    }
    const int64_t outer_extent = ceilDiv(original.extent, inner_prod);

    // Build parts inner-first so coverage can be consumed innermost-out.
    const size_t k = lengths.size();
    std::vector<Iterator> parts(k + 1);
    auto cov = original.coverage;
    for (size_t j = k; j >= 1; --j) {
        Iterator &part = parts[j];
        part.name = original.name + "." + std::to_string(j);
        part.extent = lengths[j - 1];
        part.is_reduction = original.is_reduction;
        part.coverage = consumeCoverage(cov, lengths[j - 1]);
        if (j == 1)
            break;
    }
    Iterator &outer = parts[0];
    outer.name = original.name + ".0";
    outer.extent = outer_extent;
    outer.is_reduction = original.is_reduction;
    outer.coverage = cov;

    st.iters.erase(st.iters.begin() + iter_idx);
    st.iters.insert(st.iters.begin() + iter_idx, parts.begin(), parts.end());
    return iter_idx;
}

int
State::split(int stage_idx, int iter_idx, const std::vector<int64_t> &lengths)
{
    const Stage &st = stage(stage_idx);
    const Iterator &iter = st.iters.at(static_cast<size_t>(iter_idx));

    Primitive prim;
    prim.kind = PrimKind::SP;
    prim.addNum(stage_idx);
    prim.addNum(iter_idx);
    prim.addNum(iter.extent);
    prim.addNum(static_cast<int64_t>(lengths.size()));
    for (int64_t len : lengths)
        prim.addNum(len);
    prim.addName(iter.name);
    steps_.prims.push_back(std::move(prim));

    return doSplit(stage_idx, iter_idx, lengths);
}

int
State::followSplit(int stage_idx, int iter_idx, int src_step, int n_split)
{
    TLP_CHECK(src_step >= 0 && src_step < steps_.size(),
              "bad follow_split source step ", src_step);
    const Primitive &src = steps_.prims.at(static_cast<size_t>(src_step));
    TLP_CHECK(src.kind == PrimKind::SP,
              "follow_split source must be an SP step");
    const auto count = std::get<int64_t>(src.params.at(3));
    TLP_CHECK(n_split >= 1 && n_split <= count, "bad n_split ", n_split);
    // Use the innermost n_split lengths so the follower's inner tiles
    // match the source stage's inner tiles.
    std::vector<int64_t> lengths;
    for (int64_t j = count - n_split; j < count; ++j)
        lengths.push_back(std::get<int64_t>(src.params.at(4 + j)));

    Primitive prim;
    prim.kind = PrimKind::FSP;
    prim.addNum(stage_idx);
    prim.addNum(iter_idx);
    prim.addNum(src_step);
    prim.addNum(n_split);
    steps_.prims.push_back(std::move(prim));

    return doSplit(stage_idx, iter_idx, lengths);
}

int
State::followFusedSplit(int stage_idx, int iter_idx, int src_step,
                        int n_split)
{
    TLP_CHECK(src_step >= 0 && src_step < steps_.size(),
              "bad follow_fused_split source step ", src_step);
    const Primitive &src = steps_.prims.at(static_cast<size_t>(src_step));
    TLP_CHECK(src.kind == PrimKind::SP,
              "follow_fused_split source must be an SP step");
    const auto count = std::get<int64_t>(src.params.at(3));
    TLP_CHECK(n_split >= 1 && n_split <= count, "bad n_split ", n_split);
    std::vector<int64_t> lengths;
    for (int64_t j = count - n_split; j < count; ++j)
        lengths.push_back(std::get<int64_t>(src.params.at(4 + j)));

    Primitive prim;
    prim.kind = PrimKind::FFSP;
    prim.addNum(stage_idx);
    prim.addNum(iter_idx);
    prim.addNum(src_step);
    prim.addNum(n_split);
    steps_.prims.push_back(std::move(prim));

    return doSplit(stage_idx, iter_idx, lengths);
}

void
State::reorder(int stage_idx, const std::vector<int> &order)
{
    Stage &st = mutableStage(stage_idx);
    TLP_CHECK(order.size() == st.iters.size(),
              "reorder must mention every iterator of ", st.name);
    std::vector<bool> seen(order.size(), false);
    std::vector<Iterator> reordered;
    reordered.reserve(order.size());
    for (int idx : order) {
        TLP_CHECK(idx >= 0 && idx < static_cast<int>(order.size()) &&
                      !seen[static_cast<size_t>(idx)],
                  "reorder is not a permutation");
        seen[static_cast<size_t>(idx)] = true;
        reordered.push_back(st.iters[static_cast<size_t>(idx)]);
    }
    st.iters = std::move(reordered);

    Primitive prim;
    prim.kind = PrimKind::RE;
    prim.addNum(stage_idx);
    prim.addNum(static_cast<int64_t>(order.size()));
    for (int idx : order)
        prim.addNum(idx);
    steps_.prims.push_back(std::move(prim));
}

int
State::fuse(int stage_idx, const std::vector<int> &iters)
{
    TLP_CHECK(!iters.empty(), "fuse needs iterators");
    Stage &st = mutableStage(stage_idx);
    for (size_t i = 1; i < iters.size(); ++i)
        TLP_CHECK(iters[i] == iters[i - 1] + 1,
                  "fuse expects contiguous iterators");
    const int first = iters.front();
    const int last = iters.back();
    TLP_CHECK(first >= 0 && last < static_cast<int>(st.iters.size()),
              "fuse iterator out of range");

    Iterator fused;
    fused.extent = 1;
    for (int i = first; i <= last; ++i) {
        const Iterator &part = st.iters[static_cast<size_t>(i)];
        if (!fused.name.empty())
            fused.name += "@";
        fused.name += part.name;
        fused.extent *= part.extent;
        fused.is_reduction = fused.is_reduction || part.is_reduction;
        for (const auto &cov : part.coverage)
            fused.coverage.push_back(cov);
    }
    st.iters.erase(st.iters.begin() + first, st.iters.begin() + last + 1);
    st.iters.insert(st.iters.begin() + first, std::move(fused));

    Primitive prim;
    prim.kind = PrimKind::FU;
    prim.addNum(stage_idx);
    prim.addNum(static_cast<int64_t>(iters.size()));
    for (int idx : iters)
        prim.addNum(idx);
    steps_.prims.push_back(std::move(prim));
    return first;
}

void
State::computeAt(int stage_idx, int target, int target_iter)
{
    Stage &st = mutableStage(stage_idx);
    TLP_CHECK(target >= 0 && target < numStages(), "bad CA target");
    TLP_CHECK(target != stage_idx, "compute_at on itself");
    const Stage &tgt = stage(target);
    TLP_CHECK(target_iter >= 0 &&
                  target_iter < static_cast<int>(tgt.iters.size()),
              "bad CA target iterator");
    st.loc = ComputeLoc::At;
    st.at_stage = target;
    st.at_iter = target_iter;

    Primitive prim;
    prim.kind = PrimKind::CA;
    prim.addNum(stage_idx);
    prim.addNum(target);
    prim.addNum(target_iter);
    steps_.prims.push_back(std::move(prim));
}

void
State::computeInline(int stage_idx)
{
    Stage &st = mutableStage(stage_idx);
    TLP_CHECK(!st.is_placeholder, "cannot inline a placeholder");
    st.loc = ComputeLoc::Inlined;

    Primitive prim;
    prim.kind = PrimKind::CI;
    prim.addNum(stage_idx);
    steps_.prims.push_back(std::move(prim));
}

void
State::computeRoot(int stage_idx)
{
    Stage &st = mutableStage(stage_idx);
    st.loc = ComputeLoc::Root;
    st.at_stage = -1;
    st.at_iter = -1;

    Primitive prim;
    prim.kind = PrimKind::CR;
    prim.addNum(stage_idx);
    steps_.prims.push_back(std::move(prim));
}

int
State::cacheWrite(int stage_idx)
{
    Stage &st = mutableStage(stage_idx);
    TLP_CHECK(!st.is_placeholder && !st.is_cache_stage,
              "cache_write target must be a compute stage");
    // The write access must be purely spatial (holds for heavy anchors).
    for (const auto &access : st.spec.accesses) {
        if (!access.is_write)
            continue;
        for (const auto &dim : access.dims)
            for (const auto &[iter, coef] : dim.terms)
                TLP_CHECK(!st.spec.iters
                               .at(static_cast<size_t>(iter))
                               .is_reduction,
                          "cache_write on reduction-indexed output");
    }

    Stage local = st;
    local.name = st.name + ".local";
    local.out_buffer = st.out_buffer + ".local";
    local.is_cache_stage = true;
    for (auto &access : local.spec.accesses)
        if (access.is_write)
            access.buffer = local.out_buffer;

    // The original stage becomes a spatial copy-out of the local buffer.
    ir::LoopSpec copy_spec;
    std::vector<ir::AccessDim> out_dims;
    for (size_t j = 0; j < st.spec.iters.size(); ++j) {
        const ir::IterSpec &iter = st.spec.iters[j];
        if (iter.is_reduction)
            continue;
        copy_spec.iters.push_back(iter);
        out_dims.push_back(singleDim(static_cast<int>(copy_spec.iters.size()) - 1));
    }
    ir::AccessSpec read_local;
    read_local.buffer = local.out_buffer;
    read_local.elem_bytes = 4;
    read_local.is_write = false;
    read_local.dims = out_dims;
    ir::AccessSpec write_out;
    write_out.buffer = st.out_buffer;
    write_out.elem_bytes = 4;
    write_out.is_write = true;
    write_out.dims = out_dims;
    copy_spec.accesses = {read_local, write_out};
    copy_spec.flops_per_point = 1.0;

    st.spec = std::move(copy_spec);
    st.iters.clear();
    for (size_t j = 0; j < st.spec.iters.size(); ++j) {
        const ir::IterSpec &spec_iter = st.spec.iters[j];
        Iterator iter;
        iter.name = spec_iter.name;
        iter.extent = spec_iter.extent;
        iter.is_reduction = false;
        iter.coverage = {{static_cast<int>(j), spec_iter.extent}};
        st.iters.push_back(std::move(iter));
    }

    stages_.push_back(std::move(local));

    Primitive prim;
    prim.kind = PrimKind::CHW;
    prim.addNum(stage_idx);
    prim.addName("local");
    steps_.prims.push_back(std::move(prim));
    return numStages() - 1;
}

int
State::cacheRead(int producer, int consumer)
{
    const Stage &prod = stage(producer);
    Stage &cons = mutableStage(consumer);
    TLP_CHECK(!cons.is_placeholder, "cache_read consumer must compute");

    Stage shared;
    shared.op_index = prod.op_index;
    shared.name = prod.name + ".shared";
    shared.out_buffer = prod.out_buffer + ".shared";
    shared.is_cache_stage = true;

    const ir::Shape &shape =
        subgraph_->op(prod.op_index).out.shape;
    std::vector<ir::AccessDim> dims;
    for (size_t j = 0; j < shape.size(); ++j) {
        ir::IterSpec spec_iter;
        spec_iter.name = "v" + std::to_string(j);
        spec_iter.extent = shape[j];
        spec_iter.is_reduction = false;
        shared.spec.iters.push_back(spec_iter);
        dims.push_back(singleDim(static_cast<int>(j)));

        Iterator iter;
        iter.name = spec_iter.name;
        iter.extent = spec_iter.extent;
        iter.coverage = {{static_cast<int>(j), spec_iter.extent}};
        shared.iters.push_back(std::move(iter));
    }
    ir::AccessSpec read_src;
    read_src.buffer = prod.out_buffer;
    read_src.elem_bytes = 4;
    read_src.is_write = false;
    read_src.dims = dims;
    ir::AccessSpec write_shared;
    write_shared.buffer = shared.out_buffer;
    write_shared.elem_bytes = 4;
    write_shared.is_write = true;
    write_shared.dims = dims;
    shared.spec.accesses = {read_src, write_shared};
    shared.spec.flops_per_point = 0.0;

    cons.redirects[prod.out_buffer] = shared.out_buffer;
    stages_.push_back(std::move(shared));

    Primitive prim;
    prim.kind = PrimKind::CHR;
    prim.addNum(producer);
    prim.addNum(consumer);
    prim.addName("shared");
    steps_.prims.push_back(std::move(prim));
    return numStages() - 1;
}

int
State::rfactor(int stage_idx, int iter_idx)
{
    Stage &st = mutableStage(stage_idx);
    Iterator &factored = st.iters.at(static_cast<size_t>(iter_idx));
    TLP_CHECK(factored.is_reduction, "rfactor needs a reduction iterator");
    const int64_t partials = factored.extent;

    Stage rf = st;
    rf.name = st.name + ".rf";
    rf.out_buffer = st.out_buffer + ".rf";
    rf.is_cache_stage = true;
    rf.iters.at(static_cast<size_t>(iter_idx)).is_reduction = false;
    for (auto &access : rf.spec.accesses) {
        if (!access.is_write)
            continue;
        access.buffer = rf.out_buffer;
        // The partial dimension is indexed by the factored iterator's
        // original iterators.
        for (const auto &[orig, extent] : factored.coverage)
            access.dims.push_back(singleDim(orig));
    }

    // Rebuild the original stage as the final reduction over partials.
    ir::LoopSpec final_spec;
    std::vector<ir::AccessDim> spatial_dims;
    for (const ir::IterSpec &spec_iter : st.spec.iters) {
        if (spec_iter.is_reduction)
            continue;
        final_spec.iters.push_back(spec_iter);
        spatial_dims.push_back(
            singleDim(static_cast<int>(final_spec.iters.size()) - 1));
    }
    ir::IterSpec partial_iter;
    partial_iter.name = "rfr";
    partial_iter.extent = partials;
    partial_iter.is_reduction = true;
    final_spec.iters.push_back(partial_iter);
    std::vector<ir::AccessDim> read_dims = spatial_dims;
    read_dims.push_back(
        singleDim(static_cast<int>(final_spec.iters.size()) - 1));

    ir::AccessSpec read_rf;
    read_rf.buffer = rf.out_buffer;
    read_rf.elem_bytes = 4;
    read_rf.is_write = false;
    read_rf.dims = read_dims;
    ir::AccessSpec write_out;
    write_out.buffer = st.out_buffer;
    write_out.elem_bytes = 4;
    write_out.is_write = true;
    write_out.dims = spatial_dims;
    final_spec.accesses = {read_rf, write_out};
    final_spec.flops_per_point = 1.0;

    st.spec = std::move(final_spec);
    st.iters.clear();
    for (size_t j = 0; j < st.spec.iters.size(); ++j) {
        const ir::IterSpec &spec_iter = st.spec.iters[j];
        Iterator iter;
        iter.name = spec_iter.name;
        iter.extent = spec_iter.extent;
        iter.is_reduction = spec_iter.is_reduction;
        iter.coverage = {{static_cast<int>(j), spec_iter.extent}};
        st.iters.push_back(std::move(iter));
    }

    stages_.push_back(std::move(rf));

    Primitive prim;
    prim.kind = PrimKind::RF;
    prim.addNum(stage_idx);
    prim.addNum(iter_idx);
    steps_.prims.push_back(std::move(prim));
    return numStages() - 1;
}

void
State::annotate(int stage_idx, int iter_idx, Annotation ann)
{
    Iterator &iter = mutableIter(stage_idx, iter_idx);
    if (!is_gpu_) {
        TLP_CHECK(ann != Annotation::BlockX && ann != Annotation::ThreadX &&
                      ann != Annotation::VThread,
                  "GPU binding on a CPU schedule");
    }
    iter.ann = ann;

    Primitive prim;
    prim.kind = PrimKind::AN;
    prim.addNum(stage_idx);
    prim.addNum(iter_idx);
    prim.addNum(static_cast<int64_t>(ann));
    prim.addName(annotationName(ann));
    steps_.prims.push_back(std::move(prim));
}

void
State::pragmaUnroll(int stage_idx, int64_t max_step)
{
    mutableStage(stage_idx).pragma_unroll = max_step;

    Primitive prim;
    prim.kind = PrimKind::PR;
    prim.addNum(stage_idx);
    prim.addNum(max_step);
    prim.addName("auto_unroll_max_step");
    steps_.prims.push_back(std::move(prim));
}

void
State::storageAlign(int stage_idx, int64_t factor)
{
    mutableStage(stage_idx).storage_align = factor;

    Primitive prim;
    prim.kind = PrimKind::SA;
    prim.addNum(stage_idx);
    prim.addNum(factor);
    steps_.prims.push_back(std::move(prim));
}

void
State::applyRecorded(const Primitive &prim)
{
    auto num = [&](size_t i) {
        return std::get<int64_t>(prim.params.at(i));
    };
    switch (prim.kind) {
      case PrimKind::SP: {
        const auto count = num(3);
        std::vector<int64_t> lengths;
        for (int64_t j = 0; j < count; ++j)
            lengths.push_back(num(4 + static_cast<size_t>(j)));
        split(static_cast<int>(num(0)), static_cast<int>(num(1)), lengths);
        break;
      }
      case PrimKind::FSP:
        followSplit(static_cast<int>(num(0)), static_cast<int>(num(1)),
                    static_cast<int>(num(2)), static_cast<int>(num(3)));
        break;
      case PrimKind::FFSP:
        followFusedSplit(static_cast<int>(num(0)), static_cast<int>(num(1)),
                         static_cast<int>(num(2)), static_cast<int>(num(3)));
        break;
      case PrimKind::RE: {
        const auto count = num(1);
        std::vector<int> order;
        for (int64_t j = 0; j < count; ++j)
            order.push_back(static_cast<int>(num(2 + static_cast<size_t>(j))));
        reorder(static_cast<int>(num(0)), order);
        break;
      }
      case PrimKind::FU: {
        const auto count = num(1);
        std::vector<int> iters;
        for (int64_t j = 0; j < count; ++j)
            iters.push_back(static_cast<int>(num(2 + static_cast<size_t>(j))));
        fuse(static_cast<int>(num(0)), iters);
        break;
      }
      case PrimKind::CA:
        computeAt(static_cast<int>(num(0)), static_cast<int>(num(1)),
                  static_cast<int>(num(2)));
        break;
      case PrimKind::CI:
        computeInline(static_cast<int>(num(0)));
        break;
      case PrimKind::CR:
        computeRoot(static_cast<int>(num(0)));
        break;
      case PrimKind::CHW:
        cacheWrite(static_cast<int>(num(0)));
        break;
      case PrimKind::CHR:
        cacheRead(static_cast<int>(num(0)), static_cast<int>(num(1)));
        break;
      case PrimKind::RF:
        rfactor(static_cast<int>(num(0)), static_cast<int>(num(1)));
        break;
      case PrimKind::AN:
        annotate(static_cast<int>(num(0)), static_cast<int>(num(1)),
                 static_cast<Annotation>(num(2)));
        break;
      case PrimKind::PR:
        pragmaUnroll(static_cast<int>(num(0)), num(1));
        break;
      case PrimKind::SA:
        storageAlign(static_cast<int>(num(0)), num(1));
        break;
      case PrimKind::NumKinds:
        TLP_PANIC("bad primitive");
    }
}

State
replaySteps(ir::SubgraphPtr subgraph, bool is_gpu, const PrimitiveSeq &seq)
{
    State state(std::move(subgraph), is_gpu);
    for (const Primitive &prim : seq.prims)
        state.applyRecorded(prim);
    return state;
}

} // namespace tlp::sched
