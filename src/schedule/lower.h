/**
 * @file
 * Lowering: schedule State -> loop-nest program (LoweredNest).
 *
 * The LoweredNest is this library's stand-in for the generated tensor
 * program: per-stage ordered loops with annotations, attachment points
 * resolved, and access patterns ready for footprint queries. It is what
 * the hardware latency model executes analytically, what the Ansor-style
 * feature extractor (the TenSet-MLP baseline) summarizes, and what the
 * pretty-printer renders as pseudo code (paper Fig. 2, blue box).
 *
 * Note that TLP itself never needs this lowering — its features come
 * straight from the primitive sequence — which is exactly the source of
 * its tuning-speed advantage (paper Fig. 10).
 */
#pragma once

#include <string>
#include <vector>

#include "schedule/state.h"

namespace tlp::sched {

/** One concrete loop of a lowered stage. */
struct LoweredLoop
{
    std::string name;
    int64_t extent = 1;
    bool is_reduction = false;
    Annotation ann = Annotation::None;
    /** (original iter, covered extent) pairs. */
    std::vector<std::pair<int, int64_t>> coverage;
};

/** One stage of the lowered program. */
struct LoweredStage
{
    int index = -1;                ///< stage index within the State
    std::string name;
    int op_index = -1;
    bool is_placeholder = false;
    bool is_cache_stage = false;

    ComputeLoc loc = ComputeLoc::Root;
    int at_stage = -1;
    int at_iter = -1;

    std::vector<LoweredLoop> loops;   ///< outer -> inner
    ir::LoopSpec spec;
    std::map<std::string, std::string> redirects;
    int64_t pragma_unroll = 0;
    int64_t storage_align = 0;

    /**
     * Tile extents of the stage's original iterators inside the body of
     * loop @p loop_index (-1 = outside all loops, i.e. full extents).
     */
    std::vector<int64_t> tileExtentsBelow(int loop_index) const;

    /** Product of loop extents at positions [0, loop_index]. */
    int64_t iterationsDownTo(int loop_index) const;

    /** Product of all loop extents. */
    int64_t totalIterations() const;

    /** Resolve a read buffer name through the redirect map. */
    std::string resolveBuffer(const std::string &buffer) const;
};

/** The lowered tensor program for one subgraph. */
struct LoweredNest
{
    ir::SubgraphPtr subgraph;
    bool is_gpu = false;
    std::vector<LoweredStage> stages;

    /** Stages attached (compute_at) under @p stage_index, with the loop
     *  position they attach to. */
    std::vector<std::pair<int, int>> attachedTo(int stage_index) const;

    /** Pseudo-code rendering of the program. */
    std::string prettyPrint() const;

    /**
     * Stable structural hash of the lowered program: a function of the
     * subgraph identity plus every field the latency simulator reads.
     * Used as the per-candidate key for deterministic measurement-fault
     * injection and quarantine (hwmodel).
     */
    uint64_t fingerprint() const;
};

/** Lower @p state to its loop-nest program. */
LoweredNest lower(const State &state);

} // namespace tlp::sched
