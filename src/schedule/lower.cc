#include "schedule/lower.h"

#include <algorithm>
#include <sstream>

#include "support/rng.h"

namespace tlp::sched {

std::vector<int64_t>
LoweredStage::tileExtentsBelow(int loop_index) const
{
    std::vector<int64_t> tiles(spec.iters.size(), 1);
    for (size_t q = static_cast<size_t>(loop_index + 1); q < loops.size();
         ++q) {
        for (const auto &[orig, extent] : loops[q].coverage) {
            if (orig >= 0 && orig < static_cast<int>(tiles.size()))
                tiles[static_cast<size_t>(orig)] *= extent;
        }
    }
    // Clamp: coverage may overcount on non-divisible splits.
    for (size_t i = 0; i < tiles.size(); ++i)
        tiles[i] = std::min(tiles[i], spec.iters[i].extent);
    return tiles;
}

int64_t
LoweredStage::iterationsDownTo(int loop_index) const
{
    int64_t total = 1;
    for (int q = 0; q <= loop_index && q < static_cast<int>(loops.size());
         ++q) {
        total *= loops[static_cast<size_t>(q)].extent;
    }
    return total;
}

int64_t
LoweredStage::totalIterations() const
{
    return iterationsDownTo(static_cast<int>(loops.size()) - 1);
}

std::string
LoweredStage::resolveBuffer(const std::string &buffer) const
{
    auto it = redirects.find(buffer);
    return it == redirects.end() ? buffer : it->second;
}

std::vector<std::pair<int, int>>
LoweredNest::attachedTo(int stage_index) const
{
    std::vector<std::pair<int, int>> attached;
    for (const LoweredStage &stage : stages) {
        if (stage.loc == ComputeLoc::At && stage.at_stage == stage_index)
            attached.push_back({stage.index, stage.at_iter});
    }
    return attached;
}

LoweredNest
lower(const State &state)
{
    LoweredNest nest;
    nest.subgraph = state.subgraph();
    nest.is_gpu = state.isGpu();
    nest.stages.reserve(static_cast<size_t>(state.numStages()));
    for (int i = 0; i < state.numStages(); ++i) {
        const Stage &src = state.stage(i);
        LoweredStage dst;
        dst.index = i;
        dst.name = src.name;
        dst.op_index = src.op_index;
        dst.is_placeholder = src.is_placeholder;
        dst.is_cache_stage = src.is_cache_stage;
        dst.loc = src.loc;
        dst.at_stage = src.at_stage;
        dst.at_iter = src.at_iter;
        dst.spec = src.spec;
        dst.redirects = src.redirects;
        dst.pragma_unroll = src.pragma_unroll;
        dst.storage_align = src.storage_align;
        dst.loops.reserve(src.iters.size());
        for (const Iterator &iter : src.iters) {
            LoweredLoop loop;
            loop.name = iter.name;
            loop.extent = iter.extent;
            loop.is_reduction = iter.is_reduction;
            loop.ann = iter.ann;
            loop.coverage = iter.coverage;
            dst.loops.push_back(std::move(loop));
        }
        nest.stages.push_back(std::move(dst));
    }
    return nest;
}

namespace {

std::string
annPrefix(Annotation ann)
{
    switch (ann) {
      case Annotation::None:      return "for";
      case Annotation::Parallel:  return "parallel for";
      case Annotation::Vectorize: return "vectorized for";
      case Annotation::Unroll:    return "unrolled for";
      case Annotation::BlockX:    return "for<blockIdx.x>";
      case Annotation::ThreadX:   return "for<threadIdx.x>";
      case Annotation::VThread:   return "for<vthread>";
    }
    return "for";
}

void
printStage(const LoweredNest &nest, int stage_index, int depth,
           std::ostringstream &os)
{
    const LoweredStage &stage =
        nest.stages[static_cast<size_t>(stage_index)];
    auto indent = [&](int d) { return std::string(static_cast<size_t>(d) * 2, ' '); };

    if (stage.pragma_unroll > 0) {
        os << indent(depth) << "#pragma auto_unroll_max_step="
           << stage.pragma_unroll << '\n';
    }

    const auto attached = nest.attachedTo(stage_index);
    for (size_t q = 0; q < stage.loops.size(); ++q) {
        const LoweredLoop &loop = stage.loops[q];
        os << indent(depth) << annPrefix(loop.ann) << ' ' << loop.name
           << " in 0.." << loop.extent << ":\n";
        ++depth;
        for (const auto &[child, at_iter] : attached) {
            if (at_iter == static_cast<int>(q))
                printStage(nest, child, depth, os);
        }
    }

    // Body statement.
    os << indent(depth) << stage.name << '[';
    bool first_read = true;
    std::string reads;
    for (const auto &access : stage.spec.accesses) {
        if (access.is_write)
            continue;
        if (!first_read)
            reads += ", ";
        reads += stage.resolveBuffer(access.buffer) + "[...]";
        first_read = false;
    }
    os << "...] = f(" << reads << ")\n";
}

} // namespace

uint64_t
LoweredNest::fingerprint() const
{
    uint64_t hash = fnv1a(subgraph->key().data(), subgraph->key().size());
    hash = hashCombine(hash, is_gpu ? 1 : 0);
    auto mix = [&hash](uint64_t value) { hash = hashCombine(hash, value); };
    for (const LoweredStage &stage : stages) {
        mix(fnv1a(stage.name.data(), stage.name.size()));
        mix(static_cast<uint64_t>(stage.op_index + 1));
        mix((stage.is_placeholder ? 1u : 0u) |
            (stage.is_cache_stage ? 2u : 0u) |
            (static_cast<uint64_t>(stage.loc) << 2));
        mix(static_cast<uint64_t>(stage.at_stage + 1));
        mix(static_cast<uint64_t>(stage.at_iter + 1));
        mix(static_cast<uint64_t>(stage.pragma_unroll));
        mix(static_cast<uint64_t>(stage.storage_align));
        for (const LoweredLoop &loop : stage.loops) {
            mix(static_cast<uint64_t>(loop.extent));
            mix((loop.is_reduction ? 1u : 0u) |
                (static_cast<uint64_t>(loop.ann) << 1));
            for (const auto &[iter, covered] : loop.coverage) {
                mix(static_cast<uint64_t>(iter + 1));
                mix(static_cast<uint64_t>(covered));
            }
        }
    }
    return hash;
}

std::string
LoweredNest::prettyPrint() const
{
    std::ostringstream os;
    os << "// subgraph " << subgraph->key() << (is_gpu ? " (gpu)" : " (cpu)")
       << '\n';
    for (const LoweredStage &stage : stages) {
        if (stage.is_placeholder)
            continue;
        if (stage.loc == ComputeLoc::Inlined) {
            os << "// " << stage.name << ": inlined\n";
            continue;
        }
        if (stage.loc == ComputeLoc::At)
            continue;   // printed inside its target
        printStage(*this, stage.index, 0, os);
    }
    return os.str();
}

} // namespace tlp::sched
