/**
 * @file
 * Schedule primitives — the "tensor language" of the TLP paper.
 *
 * A schedule is an ordered sequence of primitives applied to the naive
 * loop program of a subgraph. Each primitive is a primitive type plus an
 * ordered list of parameters, where every parameter is either a number or
 * a name (character parameter). This is exactly the abstract grammar of
 * Fig. 4a in the paper:
 *
 *   S   ::= p*
 *   p   ::= tau (id | num)*
 *   tau ::= split | reorder | fuse | ...
 *
 * The 14 primitive kinds mirror Ansor's transform steps; 11 are used on
 * CPU schedules and 11 on GPU schedules (most are shared).
 */
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "support/serialize.h"

namespace tlp::sched {

/** The primitive vocabulary (Ansor transform-step kinds). */
enum class PrimKind : uint8_t
{
    SP = 0,   ///< split
    RE,       ///< reorder
    FU,       ///< fuse
    FSP,      ///< follow_split
    FFSP,     ///< follow_fused_split
    CA,       ///< compute_at
    CI,       ///< compute_inline
    CR,       ///< compute_root
    CHW,      ///< cache_write
    CHR,      ///< cache_read
    RF,       ///< rfactor
    AN,       ///< annotation (parallel / vectorize / unroll / bind)
    PR,       ///< pragma (auto_unroll_max_step, ...)
    SA,       ///< storage_align
    NumKinds
};

/** Number of distinct primitive kinds. */
inline constexpr int kNumPrimKinds = static_cast<int>(PrimKind::NumKinds);

/** Paper abbreviation, e.g. "SP". */
std::string primKindName(PrimKind kind);

/** Long name, e.g. "split". */
std::string primKindLongName(PrimKind kind);

/** A primitive parameter: a number or a character (name) parameter. */
using Param = std::variant<int64_t, std::string>;

/** One schedule primitive: type + ordered parameters. */
struct Primitive
{
    PrimKind kind = PrimKind::SP;
    std::vector<Param> params;

    /** Append a numeric parameter. */
    void addNum(int64_t value) { params.emplace_back(value); }

    /** Append a character parameter. */
    void addName(std::string value) { params.emplace_back(std::move(value)); }

    /** Number of parameters (excluding the type). */
    int numParams() const { return static_cast<int>(params.size()); }

    /** Render e.g. `SP(2, 0, 512, [16, 4], "i")`. */
    std::string toString() const;

    void serialize(BinaryWriter &writer) const;
    static Primitive deserialize(BinaryReader &reader);

    bool operator==(const Primitive &other) const = default;
};

/** A complete schedule: the primitive sequence of one tensor program. */
struct PrimitiveSeq
{
    std::vector<Primitive> prims;

    int size() const { return static_cast<int>(prims.size()); }
    bool empty() const { return prims.empty(); }

    /** One primitive per line. */
    std::string toString() const;

    /** Stable content hash (for repetition-rate analysis, Sec. 4.3). */
    uint64_t hash() const;

    void serialize(BinaryWriter &writer) const;
    static PrimitiveSeq deserialize(BinaryReader &reader);

    bool operator==(const PrimitiveSeq &other) const = default;
};

/** Loop annotation kinds attachable via the AN primitive. */
enum class Annotation : uint8_t
{
    None = 0,
    Parallel,
    Vectorize,
    Unroll,
    BlockX,     ///< GPU blockIdx.x binding
    ThreadX,    ///< GPU threadIdx.x binding
    VThread,    ///< GPU virtual-thread binding
};

/** Name of an annotation, e.g. "parallel". */
std::string annotationName(Annotation ann);

} // namespace tlp::sched
